"""Quine–McCluskey logic minimization.

Section 5.2 of the paper finds the smallest DNF classifier over the selected
atomic predicates by building a partial truth table (rows = example tuples,
columns = predicates, output = positive/negative) and applying standard
two-level logic minimization.  Unobserved predicate combinations are treated as
don't-cares.

This module implements the textbook Quine–McCluskey method:

1. group the ON-set and DC-set minterms by popcount and iteratively merge
   implicants differing in exactly one bit, yielding the *prime implicants*;
2. select a minimum subset of prime implicants covering every ON-set minterm
   (a set-cover instance, solved with the solvers of
   :mod:`repro.synthesis.set_cover`).

An implicant over ``n`` variables is represented as a tuple of ``n`` entries
from ``{0, 1, None}`` where ``None`` means "don't care about this variable".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .set_cover import minimum_cover

Implicant = Tuple[Optional[int], ...]


def minterm_to_bits(minterm: int, num_vars: int) -> Tuple[int, ...]:
    """Expand an integer minterm into a bit tuple, most significant bit first."""
    return tuple((minterm >> (num_vars - 1 - i)) & 1 for i in range(num_vars))


def bits_to_minterm(bits: Sequence[int]) -> int:
    """Inverse of :func:`minterm_to_bits`."""
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


def implicant_covers(implicant: Implicant, minterm_bits: Sequence[int]) -> bool:
    """Does an implicant cover a fully-specified minterm?"""
    return all(lit is None or lit == bit for lit, bit in zip(implicant, minterm_bits))


def _merge(a: Implicant, b: Implicant) -> Optional[Implicant]:
    """Merge two implicants differing in exactly one specified bit, else None."""
    diff = 0
    merged: List[Optional[int]] = []
    for x, y in zip(a, b):
        if x == y:
            merged.append(x)
        elif x is not None and y is not None:
            diff += 1
            if diff > 1:
                return None
            merged.append(None)
        else:
            return None
    return tuple(merged) if diff == 1 else None


def prime_implicants(
    num_vars: int, minterms: Iterable[int], dont_cares: Iterable[int] = ()
) -> List[Implicant]:
    """Compute all prime implicants of the ON-set ∪ DC-set."""
    terms: Set[Implicant] = {
        tuple(minterm_to_bits(m, num_vars)) for m in set(minterms) | set(dont_cares)
    }
    if not terms:
        return []
    primes: Set[Implicant] = set()
    current = terms
    while current:
        merged_any: Set[Implicant] = set()
        used: Set[Implicant] = set()
        current_list = sorted(
            current,
            key=lambda t: (
                sum(1 for x in t if x == 1),
                tuple(-1 if x is None else x for x in t),
            ),
        )
        for i, a in enumerate(current_list):
            for b in current_list[i + 1 :]:
                merged = _merge(a, b)
                if merged is not None:
                    merged_any.add(merged)
                    used.add(a)
                    used.add(b)
        primes |= current - used
        current = merged_any
    return sorted(primes, key=lambda t: (sum(1 for x in t if x is not None), t.__repr__()))


def minimize(
    num_vars: int,
    minterms: Sequence[int],
    dont_cares: Sequence[int] = (),
    *,
    cover_strategy: str = "auto",
) -> List[Implicant]:
    """Return a minimum set of implicants whose union covers exactly the ON-set.

    The result is a sum-of-products (DNF) description: each implicant is one
    product term.  Don't-care minterms may or may not be covered.
    """
    on_set = sorted(set(minterms))
    if not on_set:
        return []
    if num_vars == 0:
        # Only one row exists; it must be positive, so the formula is `true`.
        return [tuple()]
    primes = prime_implicants(num_vars, on_set, dont_cares)
    on_bits = {m: minterm_to_bits(m, num_vars) for m in on_set}

    cover_sets: List[Set[int]] = []
    for prime in primes:
        covered = {m for m, bits in on_bits.items() if implicant_covers(prime, bits)}
        cover_sets.append(covered)

    chosen = minimum_cover(cover_sets, set(on_set), strategy=cover_strategy)
    # Prefer implicants with fewer literals when sorting the chosen terms, for
    # reproducible, readable output.
    selected = [primes[i] for i in sorted(set(chosen))]
    selected.sort(key=lambda t: (sum(1 for x in t if x is not None), repr(t)))
    return selected


# --------------------------------------------------------------------------- #
# Bitmask implementation
# --------------------------------------------------------------------------- #
#
# The vectorized predicate learner represents an implicant as a pair of
# integers ``(value, care)`` over minterm bit positions: ``care`` has a 1 for
# every specified variable and ``value ⊆ care`` gives their polarities.  The
# merge step then becomes one XOR, and candidate partners are found by popcount
# bucketing instead of the all-pairs scan of :func:`prime_implicants` — the
# prime-implicant *set* is identical (Quine–McCluskey primes are canonical),
# and results are converted back to tuple form and sorted with the same key so
# downstream selection is byte-for-byte the list-based behaviour.

from .bitset import full_mask, popcount


def _bits_implicant_to_tuple(value: int, care: int, num_vars: int) -> Implicant:
    out: List[Optional[int]] = []
    for i in range(num_vars):
        bit = 1 << (num_vars - 1 - i)
        out.append(((value & bit) and 1 or 0) if care & bit else None)
    return tuple(out)


def prime_implicants_bits(
    num_vars: int, minterms: Iterable[int], dont_cares: Iterable[int] = ()
) -> List[Implicant]:
    """Bitmask twin of :func:`prime_implicants` (identical result list)."""
    care_all = full_mask(num_vars)
    current: Set[Tuple[int, int]] = {
        (m, care_all) for m in set(minterms) | set(dont_cares)
    }
    if not current:
        return []
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged_any: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        # Group by care mask, bucket by popcount: merge partners share the
        # mask and differ in exactly one specified bit, so their popcounts
        # differ by exactly one.
        by_mask: Dict[int, Dict[int, Set[int]]] = {}
        for value, care in current:
            by_mask.setdefault(care, {}).setdefault(popcount(value), set()).add(value)
        for care, buckets in by_mask.items():
            for count, values in buckets.items():
                upper = buckets.get(count + 1)
                if not upper:
                    continue
                for value in values:
                    candidates = care & ~value
                    while candidates:
                        bit = candidates & -candidates
                        candidates ^= bit
                        partner = value | bit
                        if partner in upper:
                            merged_any.add((value, care & ~bit))
                            used.add((value, care))
                            used.add((partner, care))
        primes |= current - used
        current = merged_any
    tuples = [_bits_implicant_to_tuple(v, c, num_vars) for v, c in primes]
    return sorted(
        tuples, key=lambda t: (sum(1 for x in t if x is not None), t.__repr__())
    )


def minimize_bits(
    num_vars: int,
    minterms: Sequence[int],
    dont_cares: Sequence[int] = (),
    *,
    cover_strategy: str = "auto",
) -> List[Implicant]:
    """Bitmask twin of :func:`minimize` (identical implicant selection).

    Elements of the cover instance are indexed by the sorted ON-set, which
    orders them exactly like the minterm values the list-based path uses, so
    the (tie-break-normalized) cover solvers make the same choices.
    """
    from .set_cover import minimum_cover_bits

    on_set = sorted(set(minterms))
    if not on_set:
        return []
    if num_vars == 0:
        return [tuple()]
    primes = prime_implicants_bits(num_vars, on_set, dont_cares)

    cover_masks: List[int] = []
    for prime in primes:
        care = 0
        value = 0
        for i, lit in enumerate(prime):
            if lit is None:
                continue
            bit = 1 << (num_vars - 1 - i)
            care |= bit
            if lit:
                value |= bit
        covered = 0
        for position, m in enumerate(on_set):
            if (m & care) == value:
                covered |= 1 << position
        cover_masks.append(covered)

    chosen = minimum_cover_bits(
        cover_masks, full_mask(len(on_set)), strategy=cover_strategy
    )
    selected = [primes[i] for i in sorted(set(chosen))]
    selected.sort(key=lambda t: (sum(1 for x in t if x is not None), repr(t)))
    return selected


def implicant_to_clause(implicant: Implicant) -> List[Tuple[int, bool]]:
    """Convert an implicant into a list of (variable index, positive?) literals."""
    return [(i, bool(bit)) for i, bit in enumerate(implicant) if bit is not None]


def evaluate_dnf(implicants: Sequence[Implicant], assignment: Sequence[int]) -> bool:
    """Evaluate a sum-of-products form on a full variable assignment."""
    return any(implicant_covers(imp, assignment) for imp in implicants)
