"""Minimum set cover / 0-1 ILP solvers used by the predicate learner.

Algorithm 4 of the paper (``FindMinCover``) selects a *minimum* subset of
atomic predicates such that every (positive, negative) example pair is
distinguished by at least one selected predicate.  That optimization problem is
a 0-1 integer linear program which is exactly weighted set cover:

* elements  — the (positive, negative) example pairs,
* sets      — one per candidate predicate, containing the pairs it distinguishes,
* objective — minimize the number of selected sets.

The strategies are selected through
:class:`~repro.synthesis.config.SynthesisConfig.cover_strategy`:

* ``auto``              — exact branch and bound for small universes, the
  large-instance exact search below for everything else (ILP as a safety
  net when the search exhausts its node budget);
* ``ilp``               — scipy's MILP solver (HiGHS) on the 0-1 formulation;
* ``branch_and_bound``  — an exact, dependency-free solver with greedy
  upper bounds and element-based branching (used for small universes);
* ``greedy``            — the classic ln(n)-approximation, used as a fallback
  for very large instances and by the ablation benchmarks;
* ``legacy``            — the pre-PR-8 ``auto`` dispatch (branch and bound
  small, HiGHS large), kept so the historical solver choice — and therefore
  the exact cover HiGHS happened to return among equally-minimal ones — can
  be reproduced bit-for-bit.

The predicate learner's Table 1 tail is dominated by large cover instances
(hundreds of predicates × tens of thousands of pairs) where HiGHS spends a
minute proving what a four-set cover certificate shows in milliseconds:
:func:`exact_cover_bits` runs the same deterministic branch-and-bound search
as the small-instance solver but replaces the per-node python bit scans with
a numpy-precomputed element order, which makes the exact answer affordable at
bitmatrix scale.

All solvers return indices of the selected sets.  ``minimum_cover`` is the
strategy-dispatching entry point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

import numpy as np

try:  # scipy is an install dependency, but keep the import robust.
    from scipy.optimize import LinearConstraint, milp
    from scipy.sparse import csr_matrix

    _HAVE_SCIPY_MILP = True
except Exception:  # pragma: no cover - environment without scipy
    _HAVE_SCIPY_MILP = False


class CoverError(Exception):
    """Raised when no cover exists (some element is contained in no set)."""


def _check_coverable(sets: Sequence[FrozenSet[int]], universe: FrozenSet[int]) -> None:
    covered: Set[int] = set()
    for s in sets:
        covered |= s
    missing = universe - covered
    if missing:
        raise CoverError(f"{len(missing)} elements cannot be covered by any set")


def _normalize(sets: Sequence[Set[int]]) -> List[FrozenSet[int]]:
    return [frozenset(s) for s in sets]


# --------------------------------------------------------------------------- #
# Greedy approximation
# --------------------------------------------------------------------------- #


def greedy_cover(sets: Sequence[Set[int]], universe: Set[int]) -> List[int]:
    """Classic greedy set cover: repeatedly take the set covering most remaining."""
    normalized = _normalize(sets)
    target = frozenset(universe)
    _check_coverable(normalized, target)
    remaining = set(target)
    chosen: List[int] = []
    while remaining:
        best_idx = -1
        best_gain = 0
        for idx, s in enumerate(normalized):
            gain = len(s & remaining)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        if best_idx < 0:  # pragma: no cover - guarded by _check_coverable
            raise CoverError("greedy cover failed to make progress")
        chosen.append(best_idx)
        remaining -= normalized[best_idx]
    return chosen


# --------------------------------------------------------------------------- #
# Exact branch and bound
# --------------------------------------------------------------------------- #


def branch_and_bound_cover(
    sets: Sequence[Set[int]], universe: Set[int], *, max_nodes: int = 200_000
) -> List[int]:
    """Exact minimum set cover by branch and bound.

    Branches on the uncovered element contained in the fewest sets (the most
    constrained element), uses the greedy solution as the initial upper bound,
    and prunes with a simple lower bound (ceil of remaining / largest set).
    ``max_nodes`` caps the search; if exceeded, the best solution found so far
    (at worst the greedy one) is returned, which keeps the solver total.
    """
    normalized = _normalize(sets)
    target = frozenset(universe)
    _check_coverable(normalized, target)

    best = greedy_cover(sets, set(universe))
    best_size = len(best)

    # element -> indices of sets containing it
    containing: Dict[int, List[int]] = {e: [] for e in target}
    for idx, s in enumerate(normalized):
        for e in s:
            if e in containing:
                containing[e].append(idx)

    max_set_size = max((len(s) for s in normalized), default=1) or 1
    nodes_visited = 0

    def lower_bound(remaining: FrozenSet[int]) -> int:
        return -(-len(remaining) // max_set_size)  # ceiling division

    def search(remaining: FrozenSet[int], chosen: List[int]) -> None:
        nonlocal best, best_size, nodes_visited
        nodes_visited += 1
        if nodes_visited > max_nodes:
            return
        if not remaining:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + lower_bound(remaining) >= best_size:
            return
        # Most constrained uncovered element; ties broken by the smallest
        # element so the search order is well-defined (the bitmask solver
        # makes the identical choices, which keeps both solvers returning the
        # same optimal cover rather than an arbitrary one of equal size).
        pivot = min(remaining, key=lambda e: (len(containing[e]), e))
        for idx in containing[pivot]:
            search(remaining - normalized[idx], chosen + [idx])

    search(target, [])
    return best


# --------------------------------------------------------------------------- #
# 0-1 ILP via scipy
# --------------------------------------------------------------------------- #


def ilp_cover(sets: Sequence[Set[int]], universe: Set[int]) -> List[int]:
    """Solve minimum set cover as a 0-1 integer linear program (HiGHS)."""
    normalized = _normalize(sets)
    elements = sorted(universe)
    target = frozenset(elements)
    _check_coverable(normalized, target)
    if not elements:
        return []
    if not _HAVE_SCIPY_MILP:  # pragma: no cover - environment without scipy
        return branch_and_bound_cover(sets, set(universe))

    element_index = {e: i for i, e in enumerate(elements)}
    rows, cols = [], []
    for set_idx, s in enumerate(normalized):
        for e in s:
            if e in element_index:
                rows.append(element_index[e])
                cols.append(set_idx)
    data = np.ones(len(rows))
    matrix = csr_matrix((data, (rows, cols)), shape=(len(elements), len(normalized)))

    objective = np.ones(len(normalized))
    constraint = LinearConstraint(matrix, lb=np.ones(len(elements)), ub=np.inf)
    result = milp(
        c=objective,
        constraints=[constraint],
        integrality=np.ones(len(normalized)),
        bounds=None,
    )
    if not result.success or result.x is None:  # pragma: no cover - solver hiccup
        return branch_and_bound_cover(sets, set(universe))
    return [idx for idx, val in enumerate(result.x) if val > 0.5]


# --------------------------------------------------------------------------- #
# Bitmask solvers
# --------------------------------------------------------------------------- #
#
# The vectorized predicate learner represents cover instances as integers: set
# k is a mask whose bit e says "set k contains element e".  The solvers below
# mirror the list-based ones decision for decision (same greedy tie-breaks,
# same branch-and-bound pivoting), so both representations return the same
# cover — the equivalence tests rely on that.

from .bitset import bits_to_set, full_mask, iter_bits, mask_from_indices, popcount


def _check_coverable_bits(masks: Sequence[int], universe_mask: int) -> None:
    covered = 0
    for mask in masks:
        covered |= mask
    missing = universe_mask & ~covered
    if missing:
        raise CoverError(f"{popcount(missing)} elements cannot be covered by any set")


def greedy_cover_bits(masks: Sequence[int], universe_mask: int) -> List[int]:
    """Greedy set cover over bitmask sets (same choices as :func:`greedy_cover`)."""
    _check_coverable_bits(masks, universe_mask)
    remaining = universe_mask
    chosen: List[int] = []
    while remaining:
        best_idx = -1
        best_gain = 0
        for idx, mask in enumerate(masks):
            gain = popcount(mask & remaining)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        if best_idx < 0:  # pragma: no cover - guarded by _check_coverable_bits
            raise CoverError("greedy cover failed to make progress")
        chosen.append(best_idx)
        remaining &= ~masks[best_idx]
    return chosen


def branch_and_bound_cover_bits(
    masks: Sequence[int], universe_mask: int, *, max_nodes: int = 200_000
) -> List[int]:
    """Exact minimum cover over bitmask sets.

    Pivots on the uncovered element contained in the fewest sets (ties: the
    smallest element) and branches over its containing sets in index order —
    the identical search tree as :func:`branch_and_bound_cover`, with set
    difference and cardinality replaced by single integer operations.
    """
    _check_coverable_bits(masks, universe_mask)

    best = greedy_cover_bits(masks, universe_mask)
    best_size = len(best)

    containing: Dict[int, List[int]] = {}
    for idx, mask in enumerate(masks):
        for element in iter_bits(mask & universe_mask):
            containing.setdefault(element, []).append(idx)

    max_set_size = max((popcount(m) for m in masks), default=1) or 1
    nodes_visited = 0

    def pivot_of(remaining: int) -> int:
        # Ascending-bit scan with strict `<`: ties keep the smallest element,
        # matching the set solver's min-by-(count, element) pivot exactly.
        best_element = -1
        best_count = None
        for element in iter_bits(remaining):
            count = len(containing[element])
            if best_count is None or count < best_count:
                best_count = count
                best_element = element
                if count == 1:
                    break
        return best_element

    def search(remaining: int, chosen: List[int]) -> None:
        nonlocal best, best_size, nodes_visited
        nodes_visited += 1
        if nodes_visited > max_nodes:
            return
        if not remaining:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + -(-popcount(remaining) // max_set_size) >= best_size:
            return
        pivot = pivot_of(remaining)
        for idx in containing[pivot]:
            search(remaining & ~masks[idx], chosen + [idx])

    search(universe_mask, [])
    return best


def ilp_cover_bits(masks: Sequence[int], universe_mask: int) -> List[int]:
    """0-1 ILP cover over bitmask sets (delegates to :func:`ilp_cover`)."""
    return ilp_cover([bits_to_set(m) for m in masks], bits_to_set(universe_mask))


#: Node budget for the large-instance exact search.  Real predicate-learning
#: instances close in well under a thousand nodes (the greedy bound is tight
#: and pivots are highly constrained); the budget only matters for
#: adversarial inputs, where the ILP safety net takes over.
EXACT_COVER_MAX_NODES = 50_000


def _mask_to_bools_np(mask: int, width: int):
    """The low ``width`` bits of a mask as a numpy uint8 array (LSB first)."""
    nbytes = (width + 7) // 8
    raw = np.frombuffer(mask.to_bytes(nbytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width]


def _reduce_cover_cost(
    cover: List[int],
    masks: Sequence[int],
    universe_mask: int,
    costs: Sequence[int],
) -> List[int]:
    """Deterministic cost-reduction over equally-minimal covers.

    The search above minimizes cover *cardinality*; among the many minimum
    covers it returns whichever its canonical branching order finds first.
    When per-set costs are available, repeatedly try to swap each selected
    set for a cheaper one (ties broken by index) that still covers the
    elements only it was covering — a fixpoint of single-set swaps.  The
    cover size never changes, so minimality is preserved, and the scan
    order makes the result deterministic.
    """
    chosen = sorted(set(cover))
    improved = True
    while improved:
        improved = False
        for pos in range(len(chosen)):
            rest = 0
            for j, idx in enumerate(chosen):
                if j != pos:
                    rest |= masks[idx]
            need = universe_mask & ~rest
            current = chosen[pos]
            best_key = (costs[current], current)
            in_cover = set(chosen)
            for cand, mask in enumerate(masks):
                if cand in in_cover:
                    continue
                key = (costs[cand], cand)
                if key < best_key and mask & need == need:
                    best_key = key
            if best_key[1] != current:
                chosen[pos] = best_key[1]
                improved = True
        chosen.sort()
    return chosen


def exact_cover_bits(
    masks: Sequence[int],
    universe_mask: int,
    *,
    max_nodes: int = EXACT_COVER_MAX_NODES,
    costs: Optional[Sequence[int]] = None,
) -> "tuple[List[int], bool]":
    """Exact minimum cover for large bitmask instances.

    Runs the identical search as :func:`branch_and_bound_cover_bits` — greedy
    upper bound, pivot on the uncovered element contained in the fewest sets
    (ties: smallest element), branch over its containing sets in index order,
    prune with the ceiling lower bound — so on any instance both solvers
    return the same cover.  The difference is purely mechanical: element
    containment counts are computed once with numpy, pivots are found by
    scanning a precomputed ``(count, element)`` order against a numpy view of
    the uncovered set, and ``containing`` lists are materialized lazily for
    the few elements that actually become pivots.  That turns the per-node
    cost from O(|universe|) python bit iteration into a handful of wide
    integer operations, which is what makes exact covers affordable at
    bitmatrix scale (hundreds of sets × tens of thousands of elements).

    Returns ``(cover, complete)``: ``complete`` is ``False`` when the node
    budget was exhausted before the search space closed, in which case
    ``cover`` is the best cover found so far (at worst the greedy one) but is
    not proven minimal.

    ``costs`` (optional, one int per set) selects *which* minimum cover is
    returned without affecting its size: the result is post-processed by
    :func:`_reduce_cover_cost`, swapping selected sets for cheaper ones that
    preserve coverage.  The predicate learner passes false-on-positive counts
    here so covers prefer predicates that hold on the positive tuples — those
    become positive literals in the final DNF instead of negated ones.
    """
    _check_coverable_bits(masks, universe_mask)
    width = universe_mask.bit_length()

    best = greedy_cover_bits(masks, universe_mask)
    best_size = len(best)

    # Static per-element containment counts (the same quantity the small
    # solver reads off its `containing` dict) and the induced pivot order.
    counts = np.zeros(width, dtype=np.int64)
    for mask in masks:
        counts += _mask_to_bools_np(mask & universe_mask, width)
    rank = np.empty(width, dtype=np.int64)
    rank[np.lexsort((np.arange(width), counts))] = np.arange(width)

    containing: Dict[int, List[int]] = {}

    def containing_of(element: int) -> List[int]:
        hit = containing.get(element)
        if hit is None:
            hit = [idx for idx, mask in enumerate(masks) if (mask >> element) & 1]
            containing[element] = hit
        return hit

    max_set_size = max((popcount(m) for m in masks), default=1) or 1
    nodes_visited = 0
    exhausted = False

    def pivot_of(remaining: int) -> int:
        bits = _mask_to_bools_np(remaining, width)
        present = np.nonzero(bits)[0]
        return int(present[np.argmin(rank[present])])

    def search(remaining: int, chosen: List[int]) -> None:
        nonlocal best, best_size, nodes_visited, exhausted
        nodes_visited += 1
        if nodes_visited > max_nodes:
            exhausted = True
            return
        if not remaining:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + -(-popcount(remaining) // max_set_size) >= best_size:
            return
        pivot = pivot_of(remaining)
        for idx in containing_of(pivot):
            search(remaining & ~masks[idx], chosen + [idx])

    search(universe_mask, [])
    if costs is not None:
        best = _reduce_cover_cost(best, masks, universe_mask, costs)
    return best, not exhausted


def minimum_cover_bits(
    masks: Sequence[int],
    universe_mask: int,
    *,
    strategy: str = "auto",
    exact_limit: int = 26,
    costs: Optional[Sequence[int]] = None,
) -> List[int]:
    """Bitmask twin of :func:`minimum_cover` (same strategies, same answers)."""
    if not universe_mask:
        return []
    if strategy == "greedy":
        return greedy_cover_bits(masks, universe_mask)
    if strategy == "branch_and_bound":
        return branch_and_bound_cover_bits(masks, universe_mask)
    if strategy == "ilp":
        return ilp_cover_bits(masks, universe_mask)
    if strategy not in ("auto", "legacy"):
        raise ValueError(f"unknown cover strategy: {strategy!r}")
    if len(masks) <= exact_limit:
        return branch_and_bound_cover_bits(masks, universe_mask)
    if strategy == "auto":
        cover, complete = exact_cover_bits(masks, universe_mask, costs=costs)
        if complete:
            return cover
        if not _HAVE_SCIPY_MILP:  # pragma: no cover - no scipy fallback
            return cover
    if _HAVE_SCIPY_MILP:
        return ilp_cover_bits(masks, universe_mask)
    return greedy_cover_bits(masks, universe_mask)  # pragma: no cover - no scipy fallback


# --------------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------------- #


def minimum_cover(
    sets: Sequence[Set[int]],
    universe: Set[int],
    *,
    strategy: str = "auto",
    exact_limit: int = 26,
    costs: Optional[Sequence[int]] = None,
) -> List[int]:
    """Select a minimum (or near-minimum) family of sets covering ``universe``.

    ``strategy`` is one of ``auto``, ``ilp``, ``branch_and_bound``, ``greedy``
    or ``legacy``.  ``auto`` uses exact branch and bound for small instances
    and the large-instance exact search otherwise; ``legacy`` restores the
    pre-PR-8 dispatch (HiGHS for large instances); ``greedy`` is only
    approximate and exists for ablations and as a last-resort fallback.
    """
    if not universe:
        return []
    if strategy == "greedy":
        return greedy_cover(sets, universe)
    if strategy == "branch_and_bound":
        return branch_and_bound_cover(sets, universe)
    if strategy == "ilp":
        return ilp_cover(sets, universe)
    if strategy not in ("auto", "legacy"):
        raise ValueError(f"unknown cover strategy: {strategy!r}")
    if len(sets) <= exact_limit:
        return branch_and_bound_cover(sets, universe)
    if strategy == "auto":
        # Delegate to the bitmask search through a dense element renumbering so
        # the list and bitmask representations keep returning the same cover.
        elements = sorted(universe)
        element_index = {e: i for i, e in enumerate(elements)}
        masks = [
            mask_from_indices(element_index[e] for e in s if e in element_index)
            for s in sets
        ]
        cover, complete = exact_cover_bits(masks, full_mask(len(elements)), costs=costs)
        if complete:
            return cover
        if not _HAVE_SCIPY_MILP:  # pragma: no cover - no scipy fallback
            return cover
    if _HAVE_SCIPY_MILP:
        return ilp_cover(sets, universe)
    return greedy_cover(sets, universe)  # pragma: no cover - no scipy fallback
