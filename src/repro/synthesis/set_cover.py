"""Minimum set cover / 0-1 ILP solvers used by the predicate learner.

Algorithm 4 of the paper (``FindMinCover``) selects a *minimum* subset of
atomic predicates such that every (positive, negative) example pair is
distinguished by at least one selected predicate.  That optimization problem is
a 0-1 integer linear program which is exactly weighted set cover:

* elements  — the (positive, negative) example pairs,
* sets      — one per candidate predicate, containing the pairs it distinguishes,
* objective — minimize the number of selected sets.

Three strategies are provided and selected through
:class:`~repro.synthesis.config.SynthesisConfig.cover_strategy`:

* ``ilp``               — scipy's MILP solver (HiGHS) on the 0-1 formulation;
* ``branch_and_bound``  — an exact, dependency-free solver with greedy
  upper bounds and element-based branching (used for small universes);
* ``greedy``            — the classic ln(n)-approximation, used as a fallback
  for very large instances and by the ablation benchmarks.

All solvers return indices of the selected sets.  ``minimum_cover`` is the
strategy-dispatching entry point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

import numpy as np

try:  # scipy is an install dependency, but keep the import robust.
    from scipy.optimize import LinearConstraint, milp
    from scipy.sparse import csr_matrix

    _HAVE_SCIPY_MILP = True
except Exception:  # pragma: no cover - environment without scipy
    _HAVE_SCIPY_MILP = False


class CoverError(Exception):
    """Raised when no cover exists (some element is contained in no set)."""


def _check_coverable(sets: Sequence[FrozenSet[int]], universe: FrozenSet[int]) -> None:
    covered: Set[int] = set()
    for s in sets:
        covered |= s
    missing = universe - covered
    if missing:
        raise CoverError(f"{len(missing)} elements cannot be covered by any set")


def _normalize(sets: Sequence[Set[int]]) -> List[FrozenSet[int]]:
    return [frozenset(s) for s in sets]


# --------------------------------------------------------------------------- #
# Greedy approximation
# --------------------------------------------------------------------------- #


def greedy_cover(sets: Sequence[Set[int]], universe: Set[int]) -> List[int]:
    """Classic greedy set cover: repeatedly take the set covering most remaining."""
    normalized = _normalize(sets)
    target = frozenset(universe)
    _check_coverable(normalized, target)
    remaining = set(target)
    chosen: List[int] = []
    while remaining:
        best_idx = -1
        best_gain = 0
        for idx, s in enumerate(normalized):
            gain = len(s & remaining)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        if best_idx < 0:  # pragma: no cover - guarded by _check_coverable
            raise CoverError("greedy cover failed to make progress")
        chosen.append(best_idx)
        remaining -= normalized[best_idx]
    return chosen


# --------------------------------------------------------------------------- #
# Exact branch and bound
# --------------------------------------------------------------------------- #


def branch_and_bound_cover(
    sets: Sequence[Set[int]], universe: Set[int], *, max_nodes: int = 200_000
) -> List[int]:
    """Exact minimum set cover by branch and bound.

    Branches on the uncovered element contained in the fewest sets (the most
    constrained element), uses the greedy solution as the initial upper bound,
    and prunes with a simple lower bound (ceil of remaining / largest set).
    ``max_nodes`` caps the search; if exceeded, the best solution found so far
    (at worst the greedy one) is returned, which keeps the solver total.
    """
    normalized = _normalize(sets)
    target = frozenset(universe)
    _check_coverable(normalized, target)

    best = greedy_cover(sets, set(universe))
    best_size = len(best)

    # element -> indices of sets containing it
    containing: Dict[int, List[int]] = {e: [] for e in target}
    for idx, s in enumerate(normalized):
        for e in s:
            if e in containing:
                containing[e].append(idx)

    max_set_size = max((len(s) for s in normalized), default=1) or 1
    nodes_visited = 0

    def lower_bound(remaining: FrozenSet[int]) -> int:
        return -(-len(remaining) // max_set_size)  # ceiling division

    def search(remaining: FrozenSet[int], chosen: List[int]) -> None:
        nonlocal best, best_size, nodes_visited
        nodes_visited += 1
        if nodes_visited > max_nodes:
            return
        if not remaining:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + lower_bound(remaining) >= best_size:
            return
        # Most constrained uncovered element; ties broken by the smallest
        # element so the search order is well-defined (the bitmask solver
        # makes the identical choices, which keeps both solvers returning the
        # same optimal cover rather than an arbitrary one of equal size).
        pivot = min(remaining, key=lambda e: (len(containing[e]), e))
        for idx in containing[pivot]:
            search(remaining - normalized[idx], chosen + [idx])

    search(target, [])
    return best


# --------------------------------------------------------------------------- #
# 0-1 ILP via scipy
# --------------------------------------------------------------------------- #


def ilp_cover(sets: Sequence[Set[int]], universe: Set[int]) -> List[int]:
    """Solve minimum set cover as a 0-1 integer linear program (HiGHS)."""
    normalized = _normalize(sets)
    elements = sorted(universe)
    target = frozenset(elements)
    _check_coverable(normalized, target)
    if not elements:
        return []
    if not _HAVE_SCIPY_MILP:  # pragma: no cover - environment without scipy
        return branch_and_bound_cover(sets, set(universe))

    element_index = {e: i for i, e in enumerate(elements)}
    rows, cols = [], []
    for set_idx, s in enumerate(normalized):
        for e in s:
            if e in element_index:
                rows.append(element_index[e])
                cols.append(set_idx)
    data = np.ones(len(rows))
    matrix = csr_matrix((data, (rows, cols)), shape=(len(elements), len(normalized)))

    objective = np.ones(len(normalized))
    constraint = LinearConstraint(matrix, lb=np.ones(len(elements)), ub=np.inf)
    result = milp(
        c=objective,
        constraints=[constraint],
        integrality=np.ones(len(normalized)),
        bounds=None,
    )
    if not result.success or result.x is None:  # pragma: no cover - solver hiccup
        return branch_and_bound_cover(sets, set(universe))
    return [idx for idx, val in enumerate(result.x) if val > 0.5]


# --------------------------------------------------------------------------- #
# Bitmask solvers
# --------------------------------------------------------------------------- #
#
# The vectorized predicate learner represents cover instances as integers: set
# k is a mask whose bit e says "set k contains element e".  The solvers below
# mirror the list-based ones decision for decision (same greedy tie-breaks,
# same branch-and-bound pivoting), so both representations return the same
# cover — the equivalence tests rely on that.

from .bitset import bits_to_set, iter_bits, popcount


def _check_coverable_bits(masks: Sequence[int], universe_mask: int) -> None:
    covered = 0
    for mask in masks:
        covered |= mask
    missing = universe_mask & ~covered
    if missing:
        raise CoverError(f"{popcount(missing)} elements cannot be covered by any set")


def greedy_cover_bits(masks: Sequence[int], universe_mask: int) -> List[int]:
    """Greedy set cover over bitmask sets (same choices as :func:`greedy_cover`)."""
    _check_coverable_bits(masks, universe_mask)
    remaining = universe_mask
    chosen: List[int] = []
    while remaining:
        best_idx = -1
        best_gain = 0
        for idx, mask in enumerate(masks):
            gain = popcount(mask & remaining)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        if best_idx < 0:  # pragma: no cover - guarded by _check_coverable_bits
            raise CoverError("greedy cover failed to make progress")
        chosen.append(best_idx)
        remaining &= ~masks[best_idx]
    return chosen


def branch_and_bound_cover_bits(
    masks: Sequence[int], universe_mask: int, *, max_nodes: int = 200_000
) -> List[int]:
    """Exact minimum cover over bitmask sets.

    Pivots on the uncovered element contained in the fewest sets (ties: the
    smallest element) and branches over its containing sets in index order —
    the identical search tree as :func:`branch_and_bound_cover`, with set
    difference and cardinality replaced by single integer operations.
    """
    _check_coverable_bits(masks, universe_mask)

    best = greedy_cover_bits(masks, universe_mask)
    best_size = len(best)

    containing: Dict[int, List[int]] = {}
    for idx, mask in enumerate(masks):
        for element in iter_bits(mask & universe_mask):
            containing.setdefault(element, []).append(idx)

    max_set_size = max((popcount(m) for m in masks), default=1) or 1
    nodes_visited = 0

    def pivot_of(remaining: int) -> int:
        # Ascending-bit scan with strict `<`: ties keep the smallest element,
        # matching the set solver's min-by-(count, element) pivot exactly.
        best_element = -1
        best_count = None
        for element in iter_bits(remaining):
            count = len(containing[element])
            if best_count is None or count < best_count:
                best_count = count
                best_element = element
                if count == 1:
                    break
        return best_element

    def search(remaining: int, chosen: List[int]) -> None:
        nonlocal best, best_size, nodes_visited
        nodes_visited += 1
        if nodes_visited > max_nodes:
            return
        if not remaining:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if len(chosen) + -(-popcount(remaining) // max_set_size) >= best_size:
            return
        pivot = pivot_of(remaining)
        for idx in containing[pivot]:
            search(remaining & ~masks[idx], chosen + [idx])

    search(universe_mask, [])
    return best


def ilp_cover_bits(masks: Sequence[int], universe_mask: int) -> List[int]:
    """0-1 ILP cover over bitmask sets (delegates to :func:`ilp_cover`)."""
    return ilp_cover([bits_to_set(m) for m in masks], bits_to_set(universe_mask))


def minimum_cover_bits(
    masks: Sequence[int],
    universe_mask: int,
    *,
    strategy: str = "auto",
    exact_limit: int = 26,
) -> List[int]:
    """Bitmask twin of :func:`minimum_cover` (same strategies, same answers)."""
    if not universe_mask:
        return []
    if strategy == "greedy":
        return greedy_cover_bits(masks, universe_mask)
    if strategy == "branch_and_bound":
        return branch_and_bound_cover_bits(masks, universe_mask)
    if strategy == "ilp":
        return ilp_cover_bits(masks, universe_mask)
    if strategy != "auto":
        raise ValueError(f"unknown cover strategy: {strategy!r}")
    if len(masks) <= exact_limit:
        return branch_and_bound_cover_bits(masks, universe_mask)
    if _HAVE_SCIPY_MILP:
        return ilp_cover_bits(masks, universe_mask)
    return greedy_cover_bits(masks, universe_mask)  # pragma: no cover - no scipy fallback


# --------------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------------- #


def minimum_cover(
    sets: Sequence[Set[int]],
    universe: Set[int],
    *,
    strategy: str = "auto",
    exact_limit: int = 26,
) -> List[int]:
    """Select a minimum (or near-minimum) family of sets covering ``universe``.

    ``strategy`` is one of ``auto``, ``ilp``, ``branch_and_bound``, ``greedy``.
    ``auto`` uses exact branch and bound for small instances and the ILP solver
    otherwise; ``greedy`` is only approximate and exists for ablations and as a
    last-resort fallback.
    """
    if not universe:
        return []
    if strategy == "greedy":
        return greedy_cover(sets, universe)
    if strategy == "branch_and_bound":
        return branch_and_bound_cover(sets, universe)
    if strategy == "ilp":
        return ilp_cover(sets, universe)
    if strategy != "auto":
        raise ValueError(f"unknown cover strategy: {strategy!r}")
    # auto
    if len(sets) <= exact_limit:
        return branch_and_bound_cover(sets, universe)
    if _HAVE_SCIPY_MILP:
        return ilp_cover(sets, universe)
    return greedy_cover(sets, universe)  # pragma: no cover - no scipy fallback
