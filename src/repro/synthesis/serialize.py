"""Lossless JSON serialization of :class:`SynthesisContext` artifacts.

The plan cache makes "learn once, run many" real for *identical* specs; this
module is the first half of making it real for *edited* specs.  Everything a
:class:`~repro.synthesis.context.SynthesisContext` has learned that is a pure
function of (example trees, configuration) gets a stable wire format in the
``dsl/serialize.py`` idiom, so a later session — or a ``--jobs`` worker
process — can be seeded with the caches instead of recomputing them:

* per-tree facts — the instantiated operator alphabet, the document
  constants, and the ``value → node`` equality classes used for DFA
  acceptance;
* learned column-extractor lists keyed by ``(trees, column values)``;
* valid node-extractor sets χi keyed by ``(trees, column node-list
  signature)``;
* whole predicate universes keyed by ``(trees, per-column node-list
  signatures)``.

Node uids are process-local counters, so they never appear on the wire:
nodes are addressed by their **preorder position**, and trees by their
:meth:`~repro.hdt.tree.HDT.content_fingerprint`.  Deserialization re-keys
every artifact against the session's own tree objects — a tree whose
fingerprint does not match any provided tree is dropped entirely (its cache
entries would be meaningless), which also makes loading tolerant of stale
store entries.

What is deliberately *not* serialized: the :class:`TreeAutomaton` (its
interned states fill in demand order, so persisting them could change how the
``max_dfa_states`` budget binds), the ``(ϕ, node) → target`` memo and the
per-predicate satisfying-node-set cache (both keyed by raw uids and cheap to
rebuild for the tables actually re-synthesized), the column-signature memo
(one column evaluation per entry), and the per-tree evaluation caches
(derived data).  Because every serialized
cache is a deterministic function of its key, a rehydrated context produces
**byte-identical programs** to a cold run — the property enforced by
``tests/test_incremental.py``.

The round-trip property — rehydrating a payload against the same trees
reproduces every cache dictionary exactly — is enforced by
``tests/test_context_serialize.py``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as _dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.serialize import (
    Json,
    SerializationError,
    column_from_json,
    column_to_json,
    node_extractor_from_json,
    node_extractor_to_json,
    op_from_json,
    op_to_json,
    predicate_from_json,
    predicate_to_json,
    scalar_from_json,
    scalar_to_json,
)
from ..hdt.node import Node
from ..hdt.tree import HDT
from .config import SynthesisConfig
from .context import SynthesisContext, _is_nan

CONTEXT_FORMAT_VERSION = 2
"""Bumped whenever the context wire format changes incompatibly.

Version history:

1. χi entries keyed by column-extractor AST, universe entries by candidate
   column-AST tuples.
2. Both are keyed by **node-list signatures** — per-tree preorder-position
   lists naming the nodes a column extracts — matching the in-memory cache
   keys of :class:`~repro.synthesis.context.SynthesisContext`.  Version-1
   payloads still load: their column ASTs are evaluated against the matched
   trees to reconstruct the signatures.
"""

_OP_FIELDS = {"constant_ops", "node_pair_ops"}


# --------------------------------------------------------------------------- #
# Synthesis configuration
# --------------------------------------------------------------------------- #


def config_to_json(config: SynthesisConfig) -> Json:
    """Serialize a :class:`SynthesisConfig` (operator sets become sorted lists)."""
    payload: Dict[str, Json] = {"kind": "synthesis_config"}
    for field in _dataclass_fields(SynthesisConfig):
        value = getattr(config, field.name)
        if field.name in _OP_FIELDS:
            value = sorted(op_to_json(op) for op in value)
        payload[field.name] = value
    return payload


def config_from_json(payload: Json) -> SynthesisConfig:
    """Inverse of :func:`config_to_json`; unknown fields are ignored, missing
    fields take their defaults (so old payloads keep loading)."""
    if not isinstance(payload, dict) or payload.get("kind") != "synthesis_config":
        raise SerializationError("payload is not a serialized synthesis config")
    kwargs: Dict[str, object] = {}
    for field in _dataclass_fields(SynthesisConfig):
        if field.name not in payload:
            continue
        value = payload[field.name]
        if field.name in _OP_FIELDS:
            value = frozenset(op_from_json(symbol) for symbol in value)
        kwargs[field.name] = value
    return SynthesisConfig(**kwargs)  # type: ignore[arg-type]


def config_fingerprint(config: SynthesisConfig) -> str:
    """A stable hex digest identifying a configuration's search bounds.

    Context artifacts depend on the bounds (a tighter cap learns shorter
    lists), so the :class:`~repro.runtime.context_store.ContextStore` keys
    every entry by this digest alongside the tree fingerprints.
    """
    canonical = json.dumps(config_to_json(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Alphabet symbols
# --------------------------------------------------------------------------- #


def _symbol_to_json(symbol: Tuple) -> Json:
    return list(symbol)


def _symbol_from_json(payload: Json) -> Tuple:
    if not isinstance(payload, list) or not payload:
        raise SerializationError(f"malformed alphabet symbol payload: {payload!r}")
    return tuple(payload)


# --------------------------------------------------------------------------- #
# Context serialization
# --------------------------------------------------------------------------- #


def _has_nan(values) -> bool:
    return any(_is_nan(value) for value in values)


class _Pool:
    """Deduplicating side table for AST payloads.

    The per-universe predicate lists overlap heavily (χi pieces recur across
    candidate column sets), so each distinct AST is serialized once into a
    shared pool and referenced by index — an order-of-magnitude saving in
    both payload size and (de)serialization time, which is what keeps warm
    incremental learns cheaper than the synthesis they replace.
    """

    def __init__(self, to_json) -> None:
        self._to_json = to_json
        self._index: Dict[object, int] = {}
        self.items: List[Json] = []

    def ref(self, obj) -> int:
        position = self._index.get(obj)
        if position is None:
            position = len(self.items)
            self._index[obj] = position
            self.items.append(self._to_json(obj))
        return position


def serialize_context(context: SynthesisContext) -> Json:
    """Serialize every persistable artifact of a context.

    Cache keys that embed tree identities are rewritten as indices into the
    payload's ``trees`` array; node uids are rewritten as preorder positions;
    column extractors, node extractors and predicates are interned into
    shared pools and referenced by index.  Entries whose keys contain NaN are
    skipped — NaN equals nothing under ``compare_values``, so such entries
    can never be looked up again anyway.
    """
    trees = context.trees()
    tree_index = {id(tree): position for position, tree in enumerate(trees)}
    preorder: List[Dict[int, int]] = [
        {node.uid: position for position, node in enumerate(tree.nodes())}
        for tree in trees
    ]

    def trees_ref(trees_key: Tuple[int, ...]) -> Optional[List[int]]:
        refs = []
        for tree_id in trees_key:
            position = tree_index.get(tree_id)
            if position is None:  # pragma: no cover - keys always come from facts
                return None
            refs.append(position)
        return refs

    tree_payloads: List[Json] = []
    for position, tree in enumerate(trees):
        facts = context.facts(tree)
        entry: Dict[str, Json] = {
            "fingerprint": tree.content_fingerprint(),
            "size": tree.size(),
        }
        # Lazy facts are serialized only once computed; omitted fields simply
        # rehydrate lazily again.
        if facts.has_alphabet():
            entry["alphabet"] = [_symbol_to_json(s) for s in facts.alphabet]
        if facts.has_constants():
            entry["constants"] = [scalar_to_json(c) for c in facts.constants]
        value_uids = facts.value_classes()
        if value_uids is not None:
            uid_to_pos = preorder[position]
            entry["value_classes"] = [
                [scalar_to_json(value), sorted(uid_to_pos[uid] for uid in uids)]
                for value, uids in value_uids.items()
            ]
        tree_payloads.append(entry)

    columns_pool = _Pool(column_to_json)
    node_extractors_pool = _Pool(node_extractor_to_json)
    predicates_pool = _Pool(predicate_to_json)

    column_results: List[Json] = []
    for (trees_key, values_key), extractors in context.column_results.items():
        refs = trees_ref(trees_key)
        if refs is None or any(_has_nan(example) for example in values_key):
            continue
        column_results.append(
            {
                "trees": refs,
                "values": [
                    [scalar_to_json(v) for v in example] for example in values_key
                ],
                "extractors": [columns_pool.ref(e) for e in extractors],
            }
        )

    def sig_to_json(refs: List[int], sig: Tuple[Tuple[int, ...], ...]) -> Json:
        # One uid tuple per tree, aligned with ``refs``; uids become preorder
        # positions so the signature survives process boundaries.
        return [
            [preorder[tree_pos][uid] for uid in uids]
            for tree_pos, uids in zip(refs, sig)
        ]

    chi: List[Json] = []
    for (trees_key, sig), extractors in context.chi.items():
        refs = trees_ref(trees_key)
        if refs is None:
            continue
        chi.append(
            {
                "trees": refs,
                "signature": sig_to_json(refs, sig),
                "extractors": [node_extractors_pool.ref(e) for e in extractors],
            }
        )

    universes: List[Json] = []
    for (trees_key, sigs), predicates in context.universes.items():
        refs = trees_ref(trees_key)
        if refs is None:
            continue
        universes.append(
            {
                "trees": refs,
                "signatures": [sig_to_json(refs, sig) for sig in sigs],
                "predicates": [predicates_pool.ref(p) for p in predicates],
            }
        )

    payload: Dict[str, Json] = {
        "kind": "synthesis_context",
        "version": CONTEXT_FORMAT_VERSION,
        "trees": tree_payloads,
        "columns_pool": columns_pool.items,
        "node_extractors_pool": node_extractors_pool.items,
        "predicates_pool": predicates_pool.items,
        "column_results": column_results,
        "chi": chi,
        "universes": universes,
    }
    if context.config is not None:
        payload["config"] = config_to_json(context.config)
    return payload


def deserialize_context(
    payload: Json,
    trees: Sequence[HDT],
    context: Optional[SynthesisContext] = None,
) -> SynthesisContext:
    """Rehydrate serialized artifacts against this session's tree objects.

    ``trees`` are matched to the payload's trees by content fingerprint; the
    artifacts of unmatched payload trees are dropped.  When ``context`` is
    given, entries are merged into it without overwriting anything already
    present (used to fold ``--jobs`` worker payloads back into the parent);
    otherwise a fresh context is returned.
    """
    if not isinstance(payload, dict) or payload.get("kind") != "synthesis_context":
        raise SerializationError("payload is not a serialized synthesis context")
    version = payload.get("version", CONTEXT_FORMAT_VERSION)
    if version > CONTEXT_FORMAT_VERSION:
        raise SerializationError(
            f"context format version {version} is newer than supported "
            f"({CONTEXT_FORMAT_VERSION})"
        )
    if context is None:
        context = SynthesisContext()

    by_fingerprint = {tree.content_fingerprint(): tree for tree in trees}
    matched: Dict[int, HDT] = {}
    nodes_of: Dict[int, List[Node]] = {}
    for position, entry in enumerate(payload.get("trees", [])):
        tree = by_fingerprint.get(entry.get("fingerprint"))
        if tree is None:
            continue
        preorder = list(tree.nodes())
        if len(preorder) != entry.get("size", len(preorder)):
            continue  # defensive: fingerprint match implies equal size
        matched[position] = tree
        nodes_of[position] = preorder
        facts = context.facts(tree)
        if "alphabet" in entry and not facts.has_alphabet():
            facts.preload_alphabet(
                [_symbol_from_json(s) for s in entry["alphabet"]]
            )
        if "constants" in entry and not facts.has_constants():
            facts.preload_constants(
                [scalar_from_json(c) for c in entry["constants"]]
            )
        if "value_classes" in entry and facts.value_classes() is None:
            facts.preload_value_classes(
                {
                    scalar_from_json(value): frozenset(
                        preorder[pos].uid for pos in positions
                    )
                    for value, positions in entry["value_classes"]
                }
            )

    def trees_key(refs: List[int]) -> Optional[Tuple[int, ...]]:
        key = []
        for ref in refs:
            tree = matched.get(ref)
            if tree is None:
                return None
            key.append(id(tree))
        return tuple(key)

    # Decode each pooled AST exactly once; every reference shares the object
    # (the AST dataclasses are frozen, so sharing is safe).
    columns_pool = [column_from_json(c) for c in payload.get("columns_pool", [])]
    node_extractors_pool = [
        node_extractor_from_json(e) for e in payload.get("node_extractors_pool", [])
    ]
    predicates_pool = [
        predicate_from_json(p) for p in payload.get("predicates_pool", [])
    ]

    for entry in payload.get("column_results", []):
        key = trees_key(entry["trees"])
        if key is None:
            continue
        values = tuple(
            tuple(scalar_from_json(v) for v in example) for example in entry["values"]
        )
        context.column_results.setdefault(
            (key, values), [columns_pool[e] for e in entry["extractors"]]
        )

    def sig_from_json(refs: List[int], payload_sig: Json) -> Tuple[Tuple[int, ...], ...]:
        return tuple(
            tuple(nodes_of[ref][pos].uid for pos in positions)
            for ref, positions in zip(refs, payload_sig)
        )

    def legacy_signature(column, refs: List[int]) -> Tuple[Tuple[int, ...], ...]:
        # Version-1 entries carry the column AST; evaluating it against the
        # matched trees reconstructs the node-list signature the in-memory
        # caches key by today.
        return context.column_signature(column, [matched[ref] for ref in refs])

    for entry in payload.get("chi", []):
        key = trees_key(entry["trees"])
        if key is None:
            continue
        if "signature" in entry:
            sig = sig_from_json(entry["trees"], entry["signature"])
        else:
            sig = legacy_signature(columns_pool[entry["column"]], entry["trees"])
        context.chi.setdefault(
            (key, sig), [node_extractors_pool[e] for e in entry["extractors"]]
        )

    for entry in payload.get("universes", []):
        key = trees_key(entry["trees"])
        if key is None:
            continue
        if "signatures" in entry:
            sigs = tuple(
                sig_from_json(entry["trees"], sig) for sig in entry["signatures"]
            )
        else:
            sigs = tuple(
                legacy_signature(columns_pool[c], entry["trees"])
                for c in entry["columns"]
            )
        context.universes.setdefault(
            (key, sigs), [predicates_pool[p] for p in entry["predicates"]]
        )

    return context


def context_dumps(context: SynthesisContext, *, indent: int = 2) -> str:
    """Serialize a context straight to a JSON string."""
    return json.dumps(serialize_context(context), indent=indent, sort_keys=True)


def context_loads(
    text: str, trees: Sequence[HDT], context: Optional[SynthesisContext] = None
) -> SynthesisContext:
    """Inverse of :func:`context_dumps`."""
    return deserialize_context(json.loads(text), trees, context)
