"""Shared caches for the vectorized synthesis engine.

One :class:`SynthesisContext` accompanies a :class:`~repro.synthesis.synthesizer.Synthesizer`
for its whole lifetime and is shared across the output columns of a task and
across the tables of a multi-table migration.  It memoizes everything the
learner would otherwise recompute per column / per candidate table extractor:

* per-tree facts — the instantiated operator alphabet, the ``value → node
  uids`` equality classes used for DFA acceptance checks, the document
  constants, and a column-extractor evaluation cache (all routed through the
  tree's :class:`~repro.hdt.tree.TagIndex`);
* node-extractor targets — ``(ϕ, node) → target`` lookups shared by predicate
  universe construction, bitmatrix evaluation and signature deduplication;
* learned column-extractor lists keyed by ``(trees, column values)`` — the
  tables of one migration share many columns (keys, names, positions), so a
  repeated column is learned once;
* valid node-extractor sets (χi) and whole predicate universes keyed by the
  candidate columns' **node-list signatures** (the per-example uid tuples the
  extractor lands on) — syntactically different extractors that extract the
  same nodes share the same χi and universe, which is what makes predicate
  learning incremental across the candidate ψ of one table;
* per-predicate satisfying-node sets keyed by ``(predicate parts, column
  signature)`` — when consecutive candidates differ in one column, only the
  predicates touching that column are re-evaluated; the rest recompose their
  tuple bitmasks from the cached node sets
  (:func:`~repro.synthesis.bitset.compose_mask`).

Caches key trees by ``id``; the context keeps a strong reference to every
tree it has seen so ids cannot be recycled.  A context must not be shared
between synthesizers with different configurations (the cached artifacts
depend on the search bounds): :meth:`bind_config` enforces that.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..dsl.ast import ColumnExtractor, NodeExtractor, Predicate
from ..dsl.semantics import eval_column_on_tree, eval_node_extractor
from ..hdt.node import Node, Scalar
from ..hdt.tree import HDT


def _is_nan(value: Scalar) -> bool:
    return isinstance(value, float) and value != value


class _TreeFacts:
    """Per-tree derived data, computed once and reused across the search."""

    def __init__(self, tree: HDT) -> None:
        self.tree = tree
        self.eval_cache: Dict = {}
        self.automaton = None
        """The tree's shared :class:`~repro.synthesis.column_learner.TreeAutomaton`,
        attached by the lazy column learner on first use."""
        self._alphabet: Optional[List[Tuple]] = None
        self._value_uids: Optional[Dict[Scalar, FrozenSet[int]]] = None
        self._constants: Optional[List[Scalar]] = None

    @property
    def alphabet(self) -> List[Tuple]:
        """Operator symbols instantiated for the tree, sorted by ``repr``.

        The sort order matches how the eager enumeration orders out-edges, so
        the lazy product enumeration reports words in the identical order.
        """
        if self._alphabet is None:
            from .column_learner import _alphabet_for_tree

            self._alphabet = sorted(_alphabet_for_tree(self.tree), key=repr)
        return self._alphabet

    def uids_for_value(self, value: Scalar) -> FrozenSet[int]:
        """Uids of nodes whose data equals ``value`` under ``compare_values``.

        Scalar equality in the DSL coincides with python ``==`` (numeric
        cross-type equality included) except for NaN, which equals nothing —
        NaN keys are therefore never stored and NaN lookups return the empty
        set.  ``None`` is a legitimate value class: a ``None`` column value
        matches every data-less (internal) node, exactly like the eager
        cover check.
        """
        if self._value_uids is None:
            table: Dict[Scalar, set] = {}
            for node in self.tree.nodes():
                data = node.data
                if _is_nan(data):
                    continue
                table.setdefault(data, set()).add(node.uid)
            self._value_uids = {k: frozenset(v) for k, v in table.items()}
        if _is_nan(value):
            return frozenset()
        return self._value_uids.get(value, frozenset())

    @property
    def constants(self) -> List[Scalar]:
        if self._constants is None:
            self._constants = self.tree.constants()
        return self._constants

    # ------------------------------------------------- serialization support
    # The lazy fields above are pure functions of the tree, so a persisted
    # context (repro.synthesis.serialize) may pre-fill them instead of
    # recomputing.  ``has_*``/``value_classes`` report what has actually been
    # computed without triggering the computation.

    def has_alphabet(self) -> bool:
        return self._alphabet is not None

    def has_constants(self) -> bool:
        return self._constants is not None

    def value_classes(self) -> Optional[Dict[Scalar, FrozenSet[int]]]:
        return self._value_uids

    def preload_alphabet(self, alphabet: List[Tuple]) -> None:
        self._alphabet = alphabet

    def preload_constants(self, constants: List[Scalar]) -> None:
        self._constants = constants

    def preload_value_classes(self, value_uids: Dict[Scalar, FrozenSet[int]]) -> None:
        self._value_uids = value_uids


class SynthesisContext:
    """Cross-column, cross-table caches for one synthesis configuration."""

    #: Cache hit/miss counter names, all reported by :meth:`stats`.
    COUNTERS = (
        "universe_hits",
        "universe_misses",
        "chi_hits",
        "chi_misses",
        "mask_hits",
        "mask_misses",
    )

    def __init__(self) -> None:
        self._facts: Dict[int, _TreeFacts] = {}
        self._config_token: Optional[tuple] = None
        self.node_targets: Dict[Tuple[NodeExtractor, int], Optional[Node]] = {}
        self.column_results: Dict[tuple, List[ColumnExtractor]] = {}
        self.column_data: Dict[Tuple[int, ColumnExtractor], frozenset] = {}
        self.chi: Dict[tuple, List[NodeExtractor]] = {}
        self.universes: Dict[tuple, List[Predicate]] = {}
        self.column_sigs: Dict[tuple, tuple] = {}
        self.predicate_sat: Dict[tuple, tuple] = {}
        self.counters: Dict[str, int] = {name: 0 for name in self.COUNTERS}

    # ----------------------------------------------------------- bookkeeping
    def bind_config(self, config) -> None:
        """Pin the context to one configuration; reject cross-config sharing."""
        token = (id(config), config)
        if self._config_token is None:
            self._config_token = token
        elif self._config_token[1] != config:
            raise ValueError(
                "a SynthesisContext cannot be shared between different "
                "synthesis configurations"
            )

    @property
    def config(self):
        """The configuration the context is bound to, or ``None`` if unbound."""
        return self._config_token[1] if self._config_token is not None else None

    def trees(self) -> List[HDT]:
        """Every tree the context has seen, in first-seen order."""
        return [facts.tree for facts in self._facts.values()]

    def stats(self) -> Dict[str, int]:
        """Cache sizes and hit/miss counters, reported by the CLI summaries."""
        sizes = {
            "trees": len(self._facts),
            "column_results": len(self.column_results),
            "chi": len(self.chi),
            "universes": len(self.universes),
            "predicate_sat": len(self.predicate_sat),
        }
        sizes.update(self.counters)
        return sizes

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a cache hit/miss counter (see :attr:`COUNTERS`)."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def facts(self, tree: HDT) -> _TreeFacts:
        facts = self._facts.get(id(tree))
        if facts is None:
            facts = _TreeFacts(tree)
            self._facts[id(tree)] = facts
        return facts

    def trees_key(self, trees) -> tuple:
        """A hashable cache key identifying an ordered sequence of trees."""
        return tuple(id(self.facts(t).tree) for t in trees)

    # ------------------------------------------------------------ evaluation
    def eval_column(self, extractor: ColumnExtractor, tree: HDT) -> List[Node]:
        """Evaluate a column extractor on a tree with the shared per-tree cache."""
        return eval_column_on_tree(extractor, tree, cache=self.facts(tree).eval_cache)

    def column_data_values(self, extractor: ColumnExtractor, tree: HDT) -> frozenset:
        """The set of data values the extractor produces on the tree.

        Used by the over-approximation check (``R ⊆ [[ψ]]T``); membership in
        the set coincides with value-aware equality (NaN handled by the
        caller).
        """
        key = (id(self.facts(tree).tree), extractor)
        hit = self.column_data.get(key)
        if hit is None:
            hit = frozenset(
                n.data for n in self.eval_column(extractor, tree) if not _is_nan(n.data)
            )
            self.column_data[key] = hit
        return hit

    def target_of(self, extractor: NodeExtractor, node: Node) -> Optional[Node]:
        """Memoized ``(node extractor, node) → target`` evaluation."""
        key = (extractor, node.uid)
        cache = self.node_targets
        if key not in cache:
            cache[key] = eval_node_extractor(extractor, node)
        return cache[key]

    def column_signature(self, extractor: ColumnExtractor, trees) -> tuple:
        """The per-example node-list signature of a column extractor.

        One uid tuple per tree, in evaluation order.  Two column extractors
        with equal signatures extract the same nodes from every example, so
        every candidate-level artifact — χi sets, predicate universes,
        per-predicate satisfying-node sets — is interchangeable between them;
        the candidate-level caches key by signature for exactly that reason.
        Node uids are process-wide unique, so signatures never collide across
        trees.
        """
        trees = list(trees)
        key = (self.trees_key(trees), extractor)
        hit = self.column_sigs.get(key)
        if hit is None:
            hit = tuple(
                tuple(node.uid for node in self.eval_column(extractor, tree))
                for tree in trees
            )
            self.column_sigs[key] = hit
        return hit
