"""Bitmatrix evaluation of the atomic-predicate universe (vectorized engine).

The seed learner evaluates every predicate of the universe Φ on every tuple of
the intermediate table — ``O(|Φ| · |tuples|)`` node-extractor walks, the
dominant cost of synthesis.  This module exploits the structure of the tuple
space instead: the intermediate table is a cross product of per-column node
lists, and every atomic predicate reads at most two tuple positions, so its
truth value is a function of one node (``CompareConst``) or one node pair
(``CompareNodes``).  Evaluating per *distinct node* (or node pair) and
expanding through precomputed ``node → tuple-bitmask`` tables yields the full
truth matrix as one integer per predicate — bit *i* set iff tuple *i*
satisfies the predicate — at a cost proportional to the number of distinct
column nodes rather than the number of tuples.

Node-extractor targets are memoized in the shared
:class:`~repro.synthesis.context.SynthesisContext`, so the walks are also
shared across predicates, across candidate table extractors and across the
tables of a multi-table task.

On top of the target memo sits a second, candidate-level cache: a predicate's
*satisfying node set* — which of a column's distinct nodes (or node pairs)
make it true — depends only on the predicate's extractors/operator/constant
and on the column's node set, not on the tuple space.  Consecutive candidate
table extractors ψₙ, ψₙ₊₁ typically differ in a single column, so every
predicate not touching that column finds its satisfying set in the cache and
only *recomposes* its tuple bitmask through the new ``node → tuple-bitmask``
tables (:func:`~repro.synthesis.bitset.compose_mask`); evaluation work is
spent on the predicates whose column actually changed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.ast import CompareConst, CompareNodes, Op, Predicate
from ..dsl.semantics import NodeTuple, compare_values, eval_predicate
from ..hdt.node import Node
from .bitset import compose_mask, compose_pair_mask
from .context import SynthesisContext


class TupleSpace:
    """Per-column ``node uid → tuple bitmask`` tables for one tuple list."""

    def __init__(self, tuples: Sequence[NodeTuple], arity: int) -> None:
        self.num_tuples = len(tuples)
        self.arity = arity
        # For column c: uid -> bitmask of tuples whose c-th entry is that node,
        # plus one representative Node per uid (identity-based, so any works).
        self.masks: List[Dict[int, int]] = [{} for _ in range(arity)]
        self.nodes: List[Dict[int, Node]] = [{} for _ in range(arity)]
        for position, node_tuple in enumerate(tuples):
            bit = 1 << position
            for column, node in enumerate(node_tuple):
                masks = self.masks[column]
                uid = node.uid
                if uid in masks:
                    masks[uid] |= bit
                else:
                    masks[uid] = bit
                    self.nodes[column][uid] = node


def _compare_nodes(left: Optional[Node], op: Op, right: Optional[Node]) -> bool:
    """Figure 7 node-comparison semantics (mirrors the seed ``evaluate``)."""
    if left is None or right is None:
        return False
    if left.is_leaf() and right.is_leaf():
        return compare_values(left.data, op, right.data)
    if op is Op.EQ and not left.is_leaf() and not right.is_leaf():
        return left is right
    return False


def _const_satisfying_uids(
    space: TupleSpace, column: int, predicate: CompareConst, target_of
) -> Tuple[int, ...]:
    """Uids of the column's nodes on which a constant comparison holds."""
    satisfied = []
    nodes = space.nodes[column]
    extractor, op, constant = predicate.extractor, predicate.op, predicate.constant
    for uid in space.masks[column]:
        target = target_of(extractor, nodes[uid])
        if target is not None and compare_values(target.data, op, constant):
            satisfied.append(uid)
    return tuple(satisfied)


def _same_column_satisfying_uids(
    space: TupleSpace, column: int, predicate: CompareNodes, target_of
) -> Tuple[int, ...]:
    """Uids on which a same-column node comparison holds."""
    satisfied = []
    nodes = space.nodes[column]
    left_extractor, op, right_extractor = (
        predicate.left_extractor,
        predicate.op,
        predicate.right_extractor,
    )
    for uid in space.masks[column]:
        node = nodes[uid]
        if _compare_nodes(
            target_of(left_extractor, node), op, target_of(right_extractor, node)
        ):
            satisfied.append(uid)
    return tuple(satisfied)


def _pair_satisfying_uids(
    space: TupleSpace, i: int, j: int, predicate: CompareNodes, target_of
) -> Tuple[Tuple[int, int], ...]:
    """(left uid, right uid) pairs on which a cross-column comparison holds."""
    satisfied = []
    left_extractor, op, right_extractor = (
        predicate.left_extractor,
        predicate.op,
        predicate.right_extractor,
    )
    right_targets = [
        (uid, target_of(right_extractor, space.nodes[j][uid]))
        for uid in space.masks[j]
    ]
    for left_uid in space.masks[i]:
        left = target_of(left_extractor, space.nodes[i][left_uid])
        if left is None:
            continue
        for right_uid, right in right_targets:
            if _compare_nodes(left, op, right):
                satisfied.append((left_uid, right_uid))
    return tuple(satisfied)


def build_predicate_masks(
    universe: Sequence[Predicate],
    tuples: Sequence[NodeTuple],
    arity: int,
    context: SynthesisContext,
    *,
    cache: bool = True,
) -> List[int]:
    """Evaluate the whole universe over the tuple space, one bitmask per predicate.

    The bit order matches the tuple order (bit *i* ↔ ``tuples[i]``), so a mask
    equals the seed's per-tuple truth vector packed LSB-first.

    With ``cache`` on, each predicate's satisfying node set is looked up in
    the context's candidate-level cache, keyed by the predicate's behavioural
    parts plus the *sorted uid signature* of the column(s) it reads — the
    satisfying set depends on which nodes a column holds, never on their
    order or on the other columns.  Hits skip evaluation entirely and only
    recompose the tuple bitmask; misses evaluate and populate the cache.
    The produced masks are identical either way (the cache stores exact
    node-level decisions, not approximations).
    """
    space = TupleSpace(tuples, arity)
    target_of = context.target_of
    sat_cache = context.predicate_sat if cache else None
    if sat_cache is not None:
        column_sigs = [tuple(sorted(space.masks[c])) for c in range(arity)]
    masks: List[int] = []
    for predicate in universe:
        if isinstance(predicate, CompareConst):
            column = predicate.column
            if column >= arity:
                masks.append(0)
                continue
            if sat_cache is not None:
                key = (
                    "const",
                    predicate.extractor,
                    predicate.op,
                    predicate.constant,
                    column_sigs[column],
                )
                satisfied = sat_cache.get(key)
                if satisfied is None:
                    context.count("mask_misses")
                    satisfied = _const_satisfying_uids(
                        space, column, predicate, target_of
                    )
                    sat_cache[key] = satisfied
                else:
                    context.count("mask_hits")
            else:
                satisfied = _const_satisfying_uids(space, column, predicate, target_of)
            masks.append(compose_mask(satisfied, space.masks[column]))
        elif isinstance(predicate, CompareNodes):
            i, j = predicate.left_column, predicate.right_column
            if i >= arity or j >= arity:
                masks.append(0)
                continue
            if i == j:
                if sat_cache is not None:
                    key = (
                        "same",
                        predicate.left_extractor,
                        predicate.op,
                        predicate.right_extractor,
                        column_sigs[i],
                    )
                    satisfied = sat_cache.get(key)
                    if satisfied is None:
                        context.count("mask_misses")
                        satisfied = _same_column_satisfying_uids(
                            space, i, predicate, target_of
                        )
                        sat_cache[key] = satisfied
                    else:
                        context.count("mask_hits")
                else:
                    satisfied = _same_column_satisfying_uids(
                        space, i, predicate, target_of
                    )
                masks.append(compose_mask(satisfied, space.masks[i]))
            else:
                if sat_cache is not None:
                    key = (
                        "pair",
                        predicate.left_extractor,
                        predicate.op,
                        predicate.right_extractor,
                        column_sigs[i],
                        column_sigs[j],
                    )
                    pairs = sat_cache.get(key)
                    if pairs is None:
                        context.count("mask_misses")
                        pairs = _pair_satisfying_uids(space, i, j, predicate, target_of)
                        sat_cache[key] = pairs
                    else:
                        context.count("mask_hits")
                else:
                    pairs = _pair_satisfying_uids(space, i, j, predicate, target_of)
                masks.append(compose_pair_mask(pairs, space.masks[i], space.masks[j]))
        else:  # pragma: no cover - Φ only contains atomic comparisons
            mask = 0
            for position, node_tuple in enumerate(tuples):
                if eval_predicate(predicate, node_tuple):
                    mask |= 1 << position
            masks.append(mask)
    return masks


def distinguishing_pairs_mask(mask: int, num_pos: int, num_neg: int) -> int:
    """The (positive, negative) pairs a predicate distinguishes, as a bitmask.

    Tuple bit layout: positives occupy bits ``0..num_pos-1`` and negatives
    bits ``num_pos..``.  Pair ``(p, n)`` maps to bit ``p * num_neg + n`` —
    the exact element numbering of the seed's Algorithm 4 encoding — and is
    set iff the predicate's truth differs between positive *p* and negative
    *n*.
    """
    neg_full = (1 << num_neg) - 1
    neg_bits = (mask >> num_pos) & neg_full
    distinguished_if_pos = neg_full & ~neg_bits
    pairs = 0
    for p in range(num_pos):
        row = distinguished_if_pos if (mask >> p) & 1 else neg_bits
        if row:
            pairs |= row << (p * num_neg)
    return pairs


def dnf_mask(
    implicant_clauses: Sequence[Sequence[Tuple[int, bool]]],
    variable_masks: Sequence[int],
    full: int,
) -> int:
    """Evaluate a DNF over predicate bitmasks: OR of ANDs of (negated) literals."""
    formula = 0
    for clause in implicant_clauses:
        term = full
        for var_index, positive in clause:
            literal = variable_masks[var_index]
            term &= literal if positive else full & ~literal
            if not term:
                break
        formula |= term
    return formula
