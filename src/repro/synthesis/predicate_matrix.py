"""Bitmatrix evaluation of the atomic-predicate universe (vectorized engine).

The seed learner evaluates every predicate of the universe Φ on every tuple of
the intermediate table — ``O(|Φ| · |tuples|)`` node-extractor walks, the
dominant cost of synthesis.  This module exploits the structure of the tuple
space instead: the intermediate table is a cross product of per-column node
lists, and every atomic predicate reads at most two tuple positions, so its
truth value is a function of one node (``CompareConst``) or one node pair
(``CompareNodes``).  Evaluating per *distinct node* (or node pair) and
expanding through precomputed ``node → tuple-bitmask`` tables yields the full
truth matrix as one integer per predicate — bit *i* set iff tuple *i*
satisfies the predicate — at a cost proportional to the number of distinct
column nodes rather than the number of tuples.

Node-extractor targets are memoized in the shared
:class:`~repro.synthesis.context.SynthesisContext`, so the walks are also
shared across predicates, across candidate table extractors and across the
tables of a multi-table task.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.ast import CompareConst, CompareNodes, Op, Predicate
from ..dsl.semantics import NodeTuple, compare_values, eval_predicate
from ..hdt.node import Node
from .context import SynthesisContext


class TupleSpace:
    """Per-column ``node uid → tuple bitmask`` tables for one tuple list."""

    def __init__(self, tuples: Sequence[NodeTuple], arity: int) -> None:
        self.num_tuples = len(tuples)
        self.arity = arity
        # For column c: uid -> bitmask of tuples whose c-th entry is that node,
        # plus one representative Node per uid (identity-based, so any works).
        self.masks: List[Dict[int, int]] = [{} for _ in range(arity)]
        self.nodes: List[Dict[int, Node]] = [{} for _ in range(arity)]
        for position, node_tuple in enumerate(tuples):
            bit = 1 << position
            for column, node in enumerate(node_tuple):
                masks = self.masks[column]
                uid = node.uid
                if uid in masks:
                    masks[uid] |= bit
                else:
                    masks[uid] = bit
                    self.nodes[column][uid] = node


def _compare_nodes(left: Optional[Node], op: Op, right: Optional[Node]) -> bool:
    """Figure 7 node-comparison semantics (mirrors the seed ``evaluate``)."""
    if left is None or right is None:
        return False
    if left.is_leaf() and right.is_leaf():
        return compare_values(left.data, op, right.data)
    if op is Op.EQ and not left.is_leaf() and not right.is_leaf():
        return left is right
    return False


def build_predicate_masks(
    universe: Sequence[Predicate],
    tuples: Sequence[NodeTuple],
    arity: int,
    context: SynthesisContext,
) -> List[int]:
    """Evaluate the whole universe over the tuple space, one bitmask per predicate.

    The bit order matches the tuple order (bit *i* ↔ ``tuples[i]``), so a mask
    equals the seed's per-tuple truth vector packed LSB-first.
    """
    space = TupleSpace(tuples, arity)
    target_of = context.target_of
    masks: List[int] = []
    for predicate in universe:
        if isinstance(predicate, CompareConst):
            if predicate.column >= arity:
                masks.append(0)
                continue
            mask = 0
            extractor = predicate.extractor
            op, constant = predicate.op, predicate.constant
            nodes = space.nodes[predicate.column]
            for uid, tuple_mask in space.masks[predicate.column].items():
                target = target_of(extractor, nodes[uid])
                if target is not None and compare_values(target.data, op, constant):
                    mask |= tuple_mask
            masks.append(mask)
        elif isinstance(predicate, CompareNodes):
            i, j = predicate.left_column, predicate.right_column
            if i >= arity or j >= arity:
                masks.append(0)
                continue
            mask = 0
            left_extractor, right_extractor = (
                predicate.left_extractor,
                predicate.right_extractor,
            )
            op = predicate.op
            left_nodes = space.nodes[i]
            if i == j:
                for uid, tuple_mask in space.masks[i].items():
                    node = left_nodes[uid]
                    if _compare_nodes(
                        target_of(left_extractor, node), op, target_of(right_extractor, node)
                    ):
                        mask |= tuple_mask
            else:
                right_items = [
                    (target_of(right_extractor, node), tuple_mask)
                    for uid, tuple_mask in space.masks[j].items()
                    for node in (space.nodes[j][uid],)
                ]
                for uid, left_mask in space.masks[i].items():
                    left = target_of(left_extractor, left_nodes[uid])
                    if left is None:
                        continue
                    for right, right_mask in right_items:
                        if _compare_nodes(left, op, right):
                            mask |= left_mask & right_mask
            masks.append(mask)
        else:  # pragma: no cover - Φ only contains atomic comparisons
            mask = 0
            for position, node_tuple in enumerate(tuples):
                if eval_predicate(predicate, node_tuple):
                    mask |= 1 << position
            masks.append(mask)
    return masks


def distinguishing_pairs_mask(mask: int, num_pos: int, num_neg: int) -> int:
    """The (positive, negative) pairs a predicate distinguishes, as a bitmask.

    Tuple bit layout: positives occupy bits ``0..num_pos-1`` and negatives
    bits ``num_pos..``.  Pair ``(p, n)`` maps to bit ``p * num_neg + n`` —
    the exact element numbering of the seed's Algorithm 4 encoding — and is
    set iff the predicate's truth differs between positive *p* and negative
    *n*.
    """
    neg_full = (1 << num_neg) - 1
    neg_bits = (mask >> num_pos) & neg_full
    distinguished_if_pos = neg_full & ~neg_bits
    pairs = 0
    for p in range(num_pos):
        row = distinguished_if_pos if (mask >> p) & 1 else neg_bits
        if row:
            pairs |= row << (p * num_neg)
    return pairs


def dnf_mask(
    implicant_clauses: Sequence[Sequence[Tuple[int, bool]]],
    variable_masks: Sequence[int],
    full: int,
) -> int:
    """Evaluate a DNF over predicate bitmasks: OR of ANDs of (negated) literals."""
    formula = 0
    for clause in implicant_clauses:
        term = full
        for var_index, positive in clause:
            literal = variable_masks[var_index]
            term &= literal if positive else full & ~literal
            if not term:
                break
        formula |= term
    return formula
