"""Hierarchical data tree nodes.

The paper (Definition 1) models a hierarchical document as a rooted tree whose
nodes are triples ``(tag, pos, data)``:

* ``tag``  -- the label of the node (XML element name, JSON key, ...),
* ``pos``  -- the index of the node among its siblings that share the same tag
  (for JSON arrays: the index within the array),
* ``data`` -- the payload stored at the node; only leaf nodes carry data, every
  internal node stores ``None``.

``Node`` instances are identity-based: predicates in the DSL may compare two
internal nodes for *node identity* (see Figure 7 of the paper), so nodes are
hashable by identity and never compared structurally.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Union

# Data stored at leaves: strings, numbers or booleans.
Scalar = Union[str, int, float, bool, None]

_NODE_COUNTER = itertools.count()


class Node:
    """A single node of a hierarchical data tree.

    Parameters
    ----------
    tag:
        Label of the node.
    pos:
        Position of the node among same-tag siblings (0-based).
    data:
        Payload for leaf nodes; ``None`` for internal nodes.

    Notes
    -----
    Children are stored in document order.  The parent pointer is maintained by
    :meth:`add_child`.  Each node receives a process-wide unique ``uid`` which is
    used by the migration engine to build injective primary keys (Section 6 of
    the paper).
    """

    __slots__ = ("tag", "pos", "data", "parent", "children", "uid")

    def __init__(self, tag: str, pos: int = 0, data: Scalar = None) -> None:
        self.tag = tag
        self.pos = pos
        self.data = data
        self.parent: Optional["Node"] = None
        self.children: List["Node"] = []
        self.uid: int = next(_NODE_COUNTER)

    # ------------------------------------------------------------------ tree
    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` to this node's children and set its parent."""
        child.parent = self
        self.children.append(child)
        return child

    def new_child(self, tag: str, pos: int = 0, data: Scalar = None) -> "Node":
        """Create a fresh child node and attach it."""
        return self.add_child(Node(tag, pos, data))

    # --------------------------------------------------------------- queries
    def is_leaf(self) -> bool:
        """Return ``True`` iff the node has no children."""
        return not self.children

    def children_with_tag(self, tag: str) -> List["Node"]:
        """All children whose tag equals ``tag`` (document order)."""
        return [c for c in self.children if c.tag == tag]

    def child_with(self, tag: str, pos: int) -> Optional["Node"]:
        """The child with the given tag and position, or ``None``."""
        for c in self.children:
            if c.tag == tag and c.pos == pos:
                return c
        return None

    def descendants(self) -> Iterator["Node"]:
        """All proper descendants in document (pre-)order.

        Implemented with an explicit stack: documents are wide and can be
        deep, and the generator is on the hottest path of the executor, so
        avoiding one nested generator frame per tree level matters (and deep
        trees no longer risk the interpreter recursion limit).
        """
        stack = list(reversed(self.children))
        pop = stack.pop
        while stack:
            node = pop()
            yield node
            if node.children:
                stack.extend(reversed(node.children))

    def descendants_with_tag(self, tag: str) -> List["Node"]:
        """All proper descendants whose tag equals ``tag`` (document order)."""
        return [d for d in self.descendants() if d.tag == tag]

    def ancestors(self) -> Iterator["Node"]:
        """All proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Number of edges between this node and the root."""
        return sum(1 for _ in self.ancestors())

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted at this node (inclusive)."""
        return 1 + sum(c.subtree_size() for c in self.children)

    def path_from_root(self) -> List["Node"]:
        """Nodes from the root down to (and including) this node."""
        path = list(self.ancestors())
        path.reverse()
        path.append(self)
        return path

    # ------------------------------------------------------------------ misc
    def label(self) -> str:
        """Short human-readable label used in error messages and debugging."""
        if self.data is None:
            return f"{self.tag}[{self.pos}]"
        return f"{self.tag}[{self.pos}]={self.data!r}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Node({self.label()}, uid={self.uid})"

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other
