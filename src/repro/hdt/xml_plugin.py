"""XML plug-in: convert XML documents to hierarchical data trees and back.

Following Section 3 of the paper, XML elements map to HDT nodes; *attributes*
and *text content* are modelled as nested elements so that a node can carry a
mix of nested elements, attributes and text:

* an attribute ``a="v"`` of element ``e`` becomes a leaf child ``(a, 0, "v")``
  of the node for ``e``;
* if an element contains only text (no attributes, no child elements), the
  element node itself becomes a leaf carrying that text — this matches the
  motivating example of Figure 2/4 where ``<name>Alice</name>`` is the leaf
  node ``name`` with data ``"Alice"``;
* if an element contains text *and* other content, the text becomes a leaf
  child with the reserved tag ``text`` (as in Example 3 / Figure 8).

Positions are assigned per (parent, tag): the i-th child of a parent with a
given tag gets ``pos = i``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union
from xml.parsers import expat

from .node import Node, Scalar
from .tree import HDT

TEXT_TAG = "text"


@dataclass(frozen=True)
class XMLRecordIndex:
    """A byte-offset index over a document's records (root's direct children).

    Built in one expat pass (:func:`build_xml_record_index`) — the same
    O(file) scan the sharded runtime's counting pass already pays — it lets
    a shard **seek** straight to its record range instead of re-parsing the
    whole document per shard: ``offsets[i]`` is the byte position of record
    *i*'s opening ``<``, so the slice ``[offsets[start], offsets[stop])``
    plus the document preamble and a synthesized root close tag is a valid
    standalone document containing exactly records ``[start, stop)``
    (docs/distributed.md#the-xml-byte-offset-record-index).

    Offsets always land on the ASCII ``<`` byte, so a slice boundary can
    never split a multi-byte UTF-8 sequence; comments, CDATA and whitespace
    *between* records belong to the preceding slice and are ignored by the
    record parser exactly as they are in a full parse.  ``tags`` (each
    record's element tag, in document order) lets a mid-document slice seed
    its per-tag position counters so record positions stay whole-document.

    ``seekable`` is ``False`` for documents using XML namespaces: expat
    reports raw ``prefix:tag`` names while the ElementTree parse the runtime
    is canonical against expands them to ``{uri}tag``, so position counters
    seeded from this index would disagree — such documents fall back to the
    full-reparse path (identical output, just without the seek).
    """

    root_tag: str
    offsets: Tuple[int, ...]
    tags: Tuple[str, ...]
    content_end: int
    encoding: str = "utf-8"
    seekable: bool = True

    @property
    def record_count(self) -> int:
        return len(self.offsets)


def build_xml_record_index(path: str) -> XMLRecordIndex:
    """Index a document's record byte offsets in one streaming expat pass.

    Raises :class:`xml.parsers.expat.ExpatError` on malformed XML — callers
    that need ElementTree's error surface should fall back to the
    non-indexed path on that.
    """
    parser = expat.ParserCreate()
    state: Dict[str, object] = {
        "depth": 0,
        "root_tag": None,
        "content_end": -1,
        "encoding": None,
        "namespaced": False,
    }
    offsets: List[int] = []
    tags: List[str] = []

    def xml_decl(version: str, encoding: Optional[str], standalone: int) -> None:
        state["encoding"] = encoding

    def start_element(name: str, attrs: Dict[str, str]) -> None:
        depth = state["depth"]
        if depth == 0:
            state["root_tag"] = name
        elif depth == 1:
            offsets.append(parser.CurrentByteIndex)
            tags.append(name)
        if ":" in name or any(
            key == "xmlns" or key.startswith("xmlns:") for key in attrs
        ):
            state["namespaced"] = True
        state["depth"] = depth + 1

    def end_element(name: str) -> None:
        state["depth"] -= 1
        if state["depth"] == 0:
            state["content_end"] = parser.CurrentByteIndex

    parser.XmlDeclHandler = xml_decl
    parser.StartElementHandler = start_element
    parser.EndElementHandler = end_element
    with open(path, "rb") as handle:
        parser.ParseFile(handle)
    root_tag = state["root_tag"]
    if root_tag is None:
        raise expat.ExpatError("document has no root element")
    content_end = int(state["content_end"])
    if content_end < 0:
        # A root written as <root/> closes in its start token; there are no
        # records, so any end boundary before EOF works.  Use the root start.
        content_end = offsets[0] if offsets else 0
    return XMLRecordIndex(
        root_tag=str(root_tag),
        offsets=tuple(offsets),
        tags=tuple(tags),
        content_end=content_end,
        encoding=str(state["encoding"] or "utf-8"),
        seekable=not bool(state["namespaced"]),
    )


def xml_to_hdt(source: Union[str, ET.Element], *, coerce_numbers: bool = True) -> HDT:
    """Parse an XML document (string or ElementTree element) into an HDT.

    Parameters
    ----------
    source:
        Either an XML string or an already-parsed ``xml.etree`` element.
    coerce_numbers:
        When true, attribute values and text content that look like integers
        or floats are stored as numbers so that predicates such as
        ``id < 20`` (Example 3 of the paper) behave as expected.
    """
    element = ET.fromstring(source) if isinstance(source, str) else source
    root = _convert_element(element, pos=0, coerce=coerce_numbers)
    return HDT(root)


def xml_file_to_hdt(path: str, *, coerce_numbers: bool = True) -> HDT:
    """Parse an XML file into an HDT."""
    tree = ET.parse(path)
    return xml_to_hdt(tree.getroot(), coerce_numbers=coerce_numbers)


def element_to_node(element: ET.Element, pos: int = 0, *, coerce_numbers: bool = True) -> Node:
    """Convert a single parsed XML element into a standalone HDT node.

    This is the record-level entry point used by the streaming runtime
    (:mod:`repro.runtime.streaming`), which parses documents incrementally
    with ``iterparse`` and converts one record subtree at a time.
    """
    return _convert_element(element, pos=pos, coerce=coerce_numbers)


def _convert_element(element: ET.Element, pos: int, coerce: bool) -> Node:
    text = (element.text or "").strip()
    has_children = len(element) > 0
    has_attrs = len(element.attrib) > 0

    if text and not has_children and not has_attrs:
        # Pure text element -> leaf node carrying the text directly.
        return Node(element.tag, pos, _coerce(text) if coerce else text)

    node = Node(element.tag, pos, None)
    for name, value in element.attrib.items():
        node.add_child(Node(name, 0, _coerce(value) if coerce else value))
    if text:
        node.add_child(Node(TEXT_TAG, 0, _coerce(text) if coerce else text))

    tag_counts: Dict[str, int] = {}
    for child in element:
        child_pos = tag_counts.get(child.tag, 0)
        tag_counts[child.tag] = child_pos + 1
        node.add_child(_convert_element(child, child_pos, coerce))
    return node


def hdt_to_xml(tree: HDT) -> str:
    """Render an HDT back to an XML string (inverse of :func:`xml_to_hdt`).

    Leaf nodes are rendered as elements with text content; internal nodes as
    nested elements.  This is used by the dataset simulators to materialize
    synthetic XML documents.
    """
    element = _node_to_element(tree.root)
    return ET.tostring(element, encoding="unicode")


def _node_to_element(node: Node) -> ET.Element:
    element = ET.Element(node.tag)
    if node.is_leaf():
        element.text = _render(node.data)
        return element
    for child in node.children:
        if child.is_leaf() and child.tag == TEXT_TAG:
            element.text = _render(child.data)
        else:
            element.append(_node_to_element(child))
    return element


def _render(value: Scalar) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _coerce(value: str) -> Scalar:
    """Convert a string to int/float when it is purely numeric."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value
