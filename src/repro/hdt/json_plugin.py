"""JSON plug-in: convert JSON documents to hierarchical data trees and back.

Following Section 3 of the paper, each key/value pair of a JSON document maps
to an HDT node ``(key, pos, value)``:

* a scalar value becomes a leaf node holding the value;
* an object value becomes an internal node whose children are its key/value
  pairs (``pos = 0`` for each, since the parent is not an array);
* an array value ``k: [v0, v1, ...]`` becomes one node ``(k, i, .)`` per array
  entry ``vi`` — i.e. the array itself is flattened into repeated siblings, as
  described in Section 3 ("if the JSON file maps key k to the array
  [18, 45, 32], the HDT contains three nodes (k,0,18), (k,1,45), (k,2,32)").

The document root is a synthetic node with tag ``root``.
"""

from __future__ import annotations

import json
from typing import Any, Union

from .node import Node
from .tree import HDT

ROOT_TAG = "root"
ITEM_TAG = "item"


def json_to_hdt(source: Union[str, dict, list]) -> HDT:
    """Parse a JSON document (string or already-decoded value) into an HDT."""
    value = json.loads(source) if isinstance(source, str) else source
    root = Node(ROOT_TAG, 0, None)
    _attach_value(root, value)
    return HDT(root)


def json_file_to_hdt(path: str) -> HDT:
    """Parse a JSON file into an HDT."""
    with open(path, "r", encoding="utf-8") as handle:
        return json_to_hdt(json.load(handle))


def _attach_value(parent: Node, value: Any) -> None:
    """Attach a decoded JSON value under ``parent``."""
    if isinstance(value, dict):
        for key, val in value.items():
            _attach_pair(parent, str(key), val)
    elif isinstance(value, list):
        for idx, item in enumerate(value):
            child = parent.new_child(ITEM_TAG, idx)
            _attach_value(child, item) if isinstance(item, (dict, list)) else _set_leaf(child, item)
    else:
        parent.data = value


def _attach_pair(parent: Node, key: str, value: Any) -> None:
    """Attach a single key/value pair under ``parent``."""
    if isinstance(value, list):
        for idx, item in enumerate(value):
            child = parent.new_child(key, idx)
            if isinstance(item, (dict, list)):
                _attach_value(child, item)
            else:
                _set_leaf(child, item)
    elif isinstance(value, dict):
        child = parent.new_child(key, 0)
        _attach_value(child, value)
    else:
        child = parent.new_child(key, 0)
        _set_leaf(child, value)


def _set_leaf(node: Node, value: Any) -> None:
    node.data = value


def json_value_to_node(tag: str, pos: int, value: Any) -> Node:
    """Convert one decoded JSON value into a standalone HDT node ``(tag, pos, .)``.

    Mirrors exactly how :func:`json_to_hdt` would attach the same value under
    its parent; used by the streaming runtime to build per-record subtrees
    without materializing the whole document tree.
    """
    node = Node(tag, pos)
    if isinstance(value, (dict, list)):
        _attach_value(node, value)
    else:
        _set_leaf(node, value)
    return node


def hdt_to_json(tree: HDT) -> Any:
    """Render an HDT back into a JSON-compatible python value.

    The reconstruction groups same-tag siblings back into arrays when more than
    one sibling shares a tag (or when positions indicate array membership).
    This is used by the dataset simulators to materialize synthetic JSON files.
    """
    return _node_to_value(tree.root)


def _node_to_value(node: Node) -> Any:
    if node.is_leaf():
        return node.data
    grouped: dict = {}
    order: list = []
    for child in node.children:
        if child.tag not in grouped:
            grouped[child.tag] = []
            order.append(child.tag)
        grouped[child.tag].append(child)
    result: dict = {}
    for tag in order:
        children = grouped[tag]
        if len(children) == 1 and children[0].pos == 0:
            result[tag] = _node_to_value(children[0])
        else:
            result[tag] = [_node_to_value(c) for c in sorted(children, key=lambda n: n.pos)]
    return result


def hdt_to_json_string(tree: HDT, *, indent: int = 2) -> str:
    """Render an HDT to a JSON string."""
    return json.dumps(hdt_to_json(tree), indent=indent)
