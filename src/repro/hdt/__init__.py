"""Hierarchical data tree (HDT) substrate: node model and format plug-ins."""

from .node import Node, Scalar
from .tree import HDT, TagIndex, build_tree
from .xml_plugin import hdt_to_xml, xml_file_to_hdt, xml_to_hdt
from .json_plugin import hdt_to_json, hdt_to_json_string, json_file_to_hdt, json_to_hdt

__all__ = [
    "Node",
    "Scalar",
    "HDT",
    "TagIndex",
    "build_tree",
    "xml_to_hdt",
    "xml_file_to_hdt",
    "hdt_to_xml",
    "json_to_hdt",
    "json_file_to_hdt",
    "hdt_to_json",
    "hdt_to_json_string",
]
