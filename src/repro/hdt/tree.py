"""The hierarchical data tree (HDT) container.

An :class:`HDT` wraps a root :class:`~repro.hdt.node.Node` and provides the
whole-tree queries used by the synthesizer: the set of tags, the set of
positions, the set of constants appearing in the document, node lookup by uid,
and a few statistics used by the evaluation harness (element counts mirroring
the "#Elements" column of Table 1 in the paper).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .node import Node, Scalar


class TagIndex:
    """Tag → document-ordered node list, with pre-order subtree intervals.

    Built once per tree (or per streaming chunk) in a single O(n) walk; after
    that, ``Descendants``/``Children`` extractors answer from the index
    instead of re-traversing the document:

    * :meth:`nodes_with_tag` — every node carrying a tag, document order;
    * :meth:`descendants_with_tag` — the tag's nodes inside one subtree,
      found by binary search over pre-order entry numbers (a subtree is a
      contiguous pre-order interval), so the cost is O(log n + answer);
    * :meth:`children_with_tag` — same lookup restricted to depth + 1.

    Node uids are process-unique but *not* document-ordered (cloned chunk
    subtrees create nodes out of order), so the index assigns its own
    pre-order numbering and keeps it in uid-keyed dictionaries rather than on
    the slotted :class:`Node` instances.  Like :meth:`HDT.node_by_uid`, the
    index assumes the tree is not mutated after it is built.
    """

    def __init__(self, root: Node) -> None:
        self._root = root
        self._entry: Dict[int, int] = {}
        self._exit: Dict[int, int] = {}
        self._depth: Dict[int, int] = {}
        self._by_tag: Dict[str, List[Node]] = {}
        self._entries_by_tag: Dict[str, List[int]] = {}
        self._depths_by_tag: Dict[str, List[int]] = {}
        counter = 0
        stack: List[Tuple[Node, int, bool]] = [(root, 0, False)]
        while stack:
            node, depth, done = stack.pop()
            if done:
                self._exit[node.uid] = counter - 1
                continue
            self._entry[node.uid] = counter
            self._depth[node.uid] = depth
            self._by_tag.setdefault(node.tag, []).append(node)
            self._entries_by_tag.setdefault(node.tag, []).append(counter)
            self._depths_by_tag.setdefault(node.tag, []).append(depth)
            counter += 1
            stack.append((node, depth, True))
            for child in reversed(node.children):
                stack.append((child, depth + 1, False))

    def covers(self, node: Node) -> bool:
        """Does this index know the node (i.e. was it in the indexed tree)?"""
        return node.uid in self._entry

    def tags(self) -> List[str]:
        """All distinct tags of the indexed tree, in first-seen document order.

        The index walk is a pre-order traversal, so insertion order of the
        per-tag buckets matches :meth:`HDT.tags`.
        """
        return list(self._by_tag)

    def positions_for_tag(self, tag: str) -> List[int]:
        """Distinct positions used by nodes with the given tag, sorted."""
        return sorted({n.pos for n in self._by_tag.get(tag, ())})

    def nodes_with_tag(self, tag: str) -> List[Node]:
        """All nodes with the tag, in document order (may include the root)."""
        return self._by_tag.get(tag, [])

    def descendants_with_tag(self, node: Node, tag: str) -> List[Node]:
        """Proper descendants of ``node`` with the tag, document order."""
        nodes = self._by_tag.get(tag)
        if not nodes:
            return []
        entries = self._entries_by_tag[tag]
        start = self._entry[node.uid]
        lo = bisect_right(entries, start)
        hi = bisect_right(entries, self._exit[node.uid])
        return nodes[lo:hi]

    def children_with_tag(self, node: Node, tag: str) -> List[Node]:
        """Direct children of ``node`` with the tag, document order.

        Scans whichever candidate set is smaller: the node's child list, or
        the tag's pre-order slice inside the node's subtree (e.g. a root with
        50k children but few ``article`` descendants, or vice versa).
        """
        nodes = self._by_tag.get(tag)
        if not nodes:
            return []
        entries = self._entries_by_tag[tag]
        lo = bisect_right(entries, self._entry[node.uid])
        hi = bisect_right(entries, self._exit[node.uid])
        if hi - lo >= len(node.children):
            return [c for c in node.children if c.tag == tag]
        depths = self._depths_by_tag[tag]
        child_depth = self._depth[node.uid] + 1
        return [
            nodes[i] for i in range(lo, hi) if depths[i] == child_depth
        ]


class HDT:
    """A rooted hierarchical data tree (Definition 1 of the paper)."""

    def __init__(self, root: Node) -> None:
        self.root = root
        self._uid_index: Optional[Dict[int, Node]] = None
        self._tag_index: Optional[TagIndex] = None
        self._fingerprint: Optional[str] = None

    # --------------------------------------------------------------- queries
    def nodes(self) -> Iterator[Node]:
        """All nodes of the tree in document order (root first)."""
        yield self.root
        yield from self.root.descendants()

    def size(self) -> int:
        """Total number of nodes."""
        return self.root.subtree_size()

    def element_count(self) -> int:
        """Number of *elements*, i.e. internal nodes.

        This matches the "#Elements" statistic reported in Table 1 of the
        paper, which counts XML elements / JSON objects rather than leaves.
        """
        return sum(1 for n in self.nodes() if not n.is_leaf())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for n in self.nodes() if n.is_leaf())

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""

        def _height(node: Node) -> int:
            if not node.children:
                return 0
            return 1 + max(_height(c) for c in node.children)

        return _height(self.root)

    def tags(self) -> List[str]:
        """All distinct tags appearing in the tree, in first-seen order.

        Answered from the cached :class:`TagIndex`, so repeated calls (the
        synthesizer instantiates the operator alphabet once per example and
        per column) cost one dictionary-keys copy instead of a tree scan.
        """
        return self.tag_index().tags()

    def positions(self) -> List[int]:
        """All distinct positions appearing in the tree, sorted."""
        return sorted({node.pos for node in self.nodes()})

    def positions_for_tag(self, tag: str) -> List[int]:
        """Distinct positions used by nodes with the given tag, sorted.

        Served from the cached :class:`TagIndex` (one bucket scan) rather than
        a full-tree traversal per call.
        """
        return self.tag_index().positions_for_tag(tag)

    def constants(self) -> List[Scalar]:
        """All distinct data values stored at leaves, in first-seen order.

        These are the constants ``c`` that rule (4) of Figure 10 may use when
        building the predicate universe.
        """
        seen: Set[Scalar] = set()
        out: List[Scalar] = []
        for node in self.nodes():
            if node.data is not None and node.data not in seen:
                seen.add(node.data)
                out.append(node.data)
        return out

    def fingerprint_items(self) -> Iterator[str]:
        """A canonical line-per-node rendering of the tree (preorder, identity-free).

        Two trees yield the same item stream iff they are structurally
        identical (same tags, positions, depths and data, in document order)
        — node uids never participate, so the stream is stable across
        processes and re-parses.  Depth is part of each line: preorder alone
        cannot distinguish a child from a following sibling, and two
        differently-nested documents must not collide (they can synthesize to
        different programs).  The item order matches :meth:`nodes`, so item
        ``i`` describes the i-th preorder node.
        """
        stack: List[Tuple[Node, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            data = node.data
            shape = type(data).__name__ if data is not None else "none"
            yield f"{depth}\x00{node.tag}\x00{node.pos}\x00{shape}\x00{data!r}"
            stack.extend((child, depth + 1) for child in reversed(node.children))

    def content_fingerprint(self) -> str:
        """A stable hex digest of the tree's content (see :meth:`fingerprint_items`).

        Used as the content address of every on-disk artifact derived from a
        document: the runtime's spec-hash plan cache and the incremental
        synthesis :class:`~repro.runtime.context_store.ContextStore` both key
        their entries by it.  Cached like the other whole-tree indexes (one
        incremental learn consults it several times); call
        :meth:`invalidate_indexes` after mutating the tree in place.

        Examples
        --------
        >>> a = build_tree({"k": 1})
        >>> b = build_tree({"k": 1})
        >>> a.content_fingerprint() == b.content_fingerprint()
        True
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            for item in self.fingerprint_items():
                digest.update(item.encode("utf-8"))
                digest.update(b"\n")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def node_by_uid(self, uid: int) -> Node:
        """Look up a node by its unique id (used by the migration engine)."""
        if self._uid_index is None:
            self._uid_index = {n.uid: n for n in self.nodes()}
        return self._uid_index[uid]

    def tag_index(self) -> TagIndex:
        """The tree's :class:`TagIndex`, built lazily on first use.

        Like :meth:`node_by_uid`, the index assumes the tree is no longer
        mutated; call :meth:`invalidate_indexes` after structural changes.
        """
        if self._tag_index is None:
            self._tag_index = TagIndex(self.root)
        return self._tag_index

    def invalidate_indexes(self) -> None:
        """Drop cached indexes after mutating the tree in place."""
        self._uid_index = None
        self._tag_index = None
        self._fingerprint = None

    # ---------------------------------------------------------------- pickling
    def __getstate__(self):
        """Pickle only the tree itself; lazy indexes are rebuilt on demand.

        Keeps the payload shipped to :class:`~concurrent.futures.ProcessPoolExecutor`
        workers (parallel per-table synthesis) small.
        """
        return {"root": self.root}

    def __setstate__(self, state) -> None:
        self.root = state["root"]
        self._uid_index = None
        self._tag_index = None
        self._fingerprint = None

    def find_all(self, tag: str) -> List[Node]:
        """All nodes (including the root) with the given tag, document order."""
        return [n for n in self.nodes() if n.tag == tag]

    def find_first(self, tag: str) -> Optional[Node]:
        """First node with the given tag in document order, or ``None``."""
        for node in self.nodes():
            if node.tag == tag:
                return node
        return None

    # ------------------------------------------------------------- rendering
    def pretty(self, max_nodes: int = 200) -> str:
        """Indented textual rendering of the tree (for debugging and docs)."""
        lines: List[str] = []

        def _render(node: Node, indent: int) -> None:
            if len(lines) >= max_nodes:
                return
            lines.append("  " * indent + node.label())
            for child in node.children:
                _render(child, indent + 1)

        _render(self.root, 0)
        if self.size() > max_nodes:
            lines.append(f"... ({self.size() - max_nodes} more nodes)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HDT(root={self.root.tag!r}, size={self.size()})"


def build_tree(spec, tag: str = "root") -> HDT:
    """Build an HDT from a nested python structure (convenience for tests).

    The ``spec`` mirrors the JSON-to-HDT mapping of the paper: dictionaries
    become internal nodes whose children are the key/value pairs, lists become
    repeated children with increasing ``pos``, and scalars become leaf data.

    Examples
    --------
    >>> tree = build_tree({"person": [{"name": "Ann"}, {"name": "Bob"}]})
    >>> [n.data for n in tree.root.descendants_with_tag("name")]
    ['Ann', 'Bob']
    """
    root = Node(tag, 0, None)
    _attach(root, spec)
    return HDT(root)


def _attach(parent: Node, value) -> None:
    if isinstance(value, dict):
        for key, val in value.items():
            if isinstance(val, list):
                for idx, item in enumerate(val):
                    child = parent.new_child(str(key), idx)
                    _fill(child, item)
            else:
                child = parent.new_child(str(key), 0)
                _fill(child, val)
    elif isinstance(value, list):
        for idx, item in enumerate(value):
            child = parent.new_child("item", idx)
            _fill(child, item)
    else:
        parent.data = value


def _fill(node: Node, value) -> None:
    if isinstance(value, (dict, list)):
        _attach(node, value)
    else:
        node.data = value
