"""The hierarchical data tree (HDT) container.

An :class:`HDT` wraps a root :class:`~repro.hdt.node.Node` and provides the
whole-tree queries used by the synthesizer: the set of tags, the set of
positions, the set of constants appearing in the document, node lookup by uid,
and a few statistics used by the evaluation harness (element counts mirroring
the "#Elements" column of Table 1 in the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from .node import Node, Scalar


class HDT:
    """A rooted hierarchical data tree (Definition 1 of the paper)."""

    def __init__(self, root: Node) -> None:
        self.root = root
        self._uid_index: Optional[Dict[int, Node]] = None

    # --------------------------------------------------------------- queries
    def nodes(self) -> Iterator[Node]:
        """All nodes of the tree in document order (root first)."""
        yield self.root
        yield from self.root.descendants()

    def size(self) -> int:
        """Total number of nodes."""
        return self.root.subtree_size()

    def element_count(self) -> int:
        """Number of *elements*, i.e. internal nodes.

        This matches the "#Elements" statistic reported in Table 1 of the
        paper, which counts XML elements / JSON objects rather than leaves.
        """
        return sum(1 for n in self.nodes() if not n.is_leaf())

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for n in self.nodes() if n.is_leaf())

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""

        def _height(node: Node) -> int:
            if not node.children:
                return 0
            return 1 + max(_height(c) for c in node.children)

        return _height(self.root)

    def tags(self) -> List[str]:
        """All distinct tags appearing in the tree, in first-seen order."""
        seen: Set[str] = set()
        out: List[str] = []
        for node in self.nodes():
            if node.tag not in seen:
                seen.add(node.tag)
                out.append(node.tag)
        return out

    def positions(self) -> List[int]:
        """All distinct positions appearing in the tree, sorted."""
        return sorted({node.pos for node in self.nodes()})

    def positions_for_tag(self, tag: str) -> List[int]:
        """Distinct positions used by nodes with the given tag, sorted."""
        return sorted({n.pos for n in self.nodes() if n.tag == tag})

    def constants(self) -> List[Scalar]:
        """All distinct data values stored at leaves, in first-seen order.

        These are the constants ``c`` that rule (4) of Figure 10 may use when
        building the predicate universe.
        """
        seen: Set[Scalar] = set()
        out: List[Scalar] = []
        for node in self.nodes():
            if node.data is not None and node.data not in seen:
                seen.add(node.data)
                out.append(node.data)
        return out

    def node_by_uid(self, uid: int) -> Node:
        """Look up a node by its unique id (used by the migration engine)."""
        if self._uid_index is None:
            self._uid_index = {n.uid: n for n in self.nodes()}
        return self._uid_index[uid]

    def find_all(self, tag: str) -> List[Node]:
        """All nodes (including the root) with the given tag, document order."""
        return [n for n in self.nodes() if n.tag == tag]

    def find_first(self, tag: str) -> Optional[Node]:
        """First node with the given tag in document order, or ``None``."""
        for node in self.nodes():
            if node.tag == tag:
                return node
        return None

    # ------------------------------------------------------------- rendering
    def pretty(self, max_nodes: int = 200) -> str:
        """Indented textual rendering of the tree (for debugging and docs)."""
        lines: List[str] = []

        def _render(node: Node, indent: int) -> None:
            if len(lines) >= max_nodes:
                return
            lines.append("  " * indent + node.label())
            for child in node.children:
                _render(child, indent + 1)

        _render(self.root, 0)
        if self.size() > max_nodes:
            lines.append(f"... ({self.size() - max_nodes} more nodes)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HDT(root={self.root.tag!r}, size={self.size()})"


def build_tree(spec, tag: str = "root") -> HDT:
    """Build an HDT from a nested python structure (convenience for tests).

    The ``spec`` mirrors the JSON-to-HDT mapping of the paper: dictionaries
    become internal nodes whose children are the key/value pairs, lists become
    repeated children with increasing ``pos``, and scalars become leaf data.

    Examples
    --------
    >>> tree = build_tree({"person": [{"name": "Ann"}, {"name": "Bob"}]})
    >>> [n.data for n in tree.root.descendants_with_tag("name")]
    ['Ann', 'Bob']
    """
    root = Node(tag, 0, None)
    _attach(root, spec)
    return HDT(root)


def _attach(parent: Node, value) -> None:
    if isinstance(value, dict):
        for key, val in value.items():
            if isinstance(val, list):
                for idx, item in enumerate(val):
                    child = parent.new_child(str(key), idx)
                    _fill(child, item)
            else:
                child = parent.new_child(str(key), 0)
                _fill(child, val)
    elif isinstance(value, list):
        for idx, item in enumerate(value):
            child = parent.new_child("item", idx)
            _fill(child, item)
    else:
        parent.data = value


def _fill(node: Node, value) -> None:
    if isinstance(value, (dict, list)):
        _attach(node, value)
    else:
        node.data = value
