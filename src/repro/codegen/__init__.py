"""Code generation back-ends: Python (executable), XSLT, JavaScript and SQL."""

from .common import count_program_loc
from .js_gen import generate_javascript
from .python_gen import compile_loaders, compile_program, generate_python
from .sql_gen import (
    create_index_statement,
    create_index_statements,
    create_schema_statements,
    create_table_statement,
    expected_index_names,
    generate_sql_dump,
    index_name,
    insert_statements,
)
from .xslt_gen import column_to_xpath, generate_xslt

__all__ = [
    "count_program_loc",
    "generate_javascript",
    "compile_loaders",
    "compile_program",
    "generate_python",
    "create_index_statement",
    "create_index_statements",
    "create_schema_statements",
    "create_table_statement",
    "expected_index_names",
    "generate_sql_dump",
    "index_name",
    "insert_statements",
    "column_to_xpath",
    "generate_xslt",
]
