"""SQL generation: DDL from schemas and DML from migrated tables.

The end product of the Table 2 experiment is a relational database.  This
module renders a :class:`~repro.relational.schema.DatabaseSchema` as
``CREATE TABLE`` statements (with primary- and foreign-key clauses) and a
populated :class:`~repro.relational.database.Database` as ``INSERT``
statements, so that the migrated data can be loaded into any SQL engine.
"""

from __future__ import annotations

from typing import List, Sequence

from ..hdt.node import Scalar
from ..relational.database import Database
from ..relational.schema import ColumnDef, DatabaseSchema, TableSchema
from ..relational.table import Table

_SQL_TYPES = {"text": "TEXT", "integer": "INTEGER", "real": "REAL"}


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL (double quotes, escaped)."""
    return '"' + name.replace('"', '""') + '"'


def render_value(value: Scalar) -> str:
    """Render a scalar as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def create_table_statement(table: TableSchema) -> str:
    """Render one CREATE TABLE statement with key constraints."""
    lines: List[str] = []
    for column in table.columns:
        parts = [f"  {quote_identifier(column.name)} {_SQL_TYPES[column.dtype]}"]
        if not column.nullable:
            parts.append("NOT NULL")
        lines.append(" ".join(parts))
    if table.primary_key is not None:
        lines.append(f"  PRIMARY KEY ({quote_identifier(table.primary_key)})")
    for fk in table.foreign_keys:
        lines.append(
            f"  FOREIGN KEY ({quote_identifier(fk.column)}) REFERENCES "
            f"{quote_identifier(fk.target_table)} ({quote_identifier(fk.target_column)})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {quote_identifier(table.name)} (\n{body}\n);"


def create_schema_statements(schema: DatabaseSchema) -> List[str]:
    """CREATE TABLE statements in dependency order."""
    return [create_table_statement(table) for table in schema.topological_order()]


def insert_statements(table: Table, *, batch_size: int = 500) -> List[str]:
    """INSERT statements for a populated table (multi-row VALUES batches)."""
    if not table.rows:
        return []
    column_list = ", ".join(quote_identifier(c) for c in table.columns)
    statements: List[str] = []
    for start in range(0, len(table.rows), batch_size):
        batch = table.rows[start : start + batch_size]
        values = ",\n  ".join(
            "(" + ", ".join(render_value(v) for v in row) + ")" for row in batch
        )
        statements.append(
            f"INSERT INTO {quote_identifier(table.name)} ({column_list}) VALUES\n  {values};"
        )
    return statements


def generate_sql_dump(database: Database) -> str:
    """A full SQL dump (DDL + DML) of a migrated database."""
    parts: List[str] = ["BEGIN TRANSACTION;"]
    parts.extend(create_schema_statements(database.schema))
    for table_schema in database.schema.topological_order():
        parts.extend(insert_statements(database.table(table_schema.name)))
    parts.append("COMMIT;")
    return "\n\n".join(parts) + "\n"
