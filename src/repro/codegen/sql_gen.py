"""SQL generation: DDL from schemas and DML from migrated tables.

The end product of the Table 2 experiment is a relational database.  This
module renders a :class:`~repro.relational.schema.DatabaseSchema` as
``CREATE TABLE`` statements (with primary- and foreign-key clauses) and a
populated :class:`~repro.relational.database.Database` as ``INSERT``
statements, so that the migrated data can be loaded into any SQL engine.

Beyond bare correctness, dumps are meant to be *servable*: every foreign-key
column gets a secondary index (``CREATE INDEX``), because the FK columns are
exactly the join columns a serving workload hits.  The SQLite and DuckDB
backends apply the same statements post-load.
"""

from __future__ import annotations

from typing import Dict, List

from ..hdt.node import Scalar
from ..relational.database import Database
from ..relational.schema import DatabaseSchema, TableSchema
from ..relational.table import Table

_SQL_TYPES = {"text": "TEXT", "integer": "INTEGER", "real": "REAL"}

# Per-dialect type maps.  DuckDB's INTEGER is 32-bit and REAL is float4, so
# the duckdb dialect widens both to preserve python int/float values exactly.
SQL_DIALECT_TYPES: Dict[str, Dict[str, str]] = {
    "sqlite": _SQL_TYPES,
    "duckdb": {"text": "TEXT", "integer": "BIGINT", "real": "DOUBLE"},
}


def _dialect_types(dialect: str) -> Dict[str, str]:
    try:
        return SQL_DIALECT_TYPES[dialect]
    except KeyError:
        raise ValueError(
            f"unknown SQL dialect {dialect!r}; expected one of "
            f"{tuple(sorted(SQL_DIALECT_TYPES))}"
        ) from None


def quote_identifier(name: str) -> str:
    """Quote an identifier for SQL (double quotes, escaped)."""
    return '"' + name.replace('"', '""') + '"'


def render_value(value: Scalar) -> str:
    """Render a scalar as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def create_table_statement(table: TableSchema, *, dialect: str = "sqlite") -> str:
    """Render one CREATE TABLE statement with key constraints."""
    types = _dialect_types(dialect)
    lines: List[str] = []
    for column in table.columns:
        parts = [f"  {quote_identifier(column.name)} {types[column.dtype]}"]
        if not column.nullable:
            parts.append("NOT NULL")
        lines.append(" ".join(parts))
    if table.primary_key is not None:
        lines.append(f"  PRIMARY KEY ({quote_identifier(table.primary_key)})")
    for fk in table.foreign_keys:
        lines.append(
            f"  FOREIGN KEY ({quote_identifier(fk.column)}) REFERENCES "
            f"{quote_identifier(fk.target_table)} ({quote_identifier(fk.target_column)})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {quote_identifier(table.name)} (\n{body}\n);"


def create_schema_statements(
    schema: DatabaseSchema, *, dialect: str = "sqlite"
) -> List[str]:
    """CREATE TABLE statements in dependency order."""
    return [
        create_table_statement(table, dialect=dialect)
        for table in schema.topological_order()
    ]


def index_name(table: str, column: str) -> str:
    """The canonical name of the secondary index on ``table.column``."""
    return f"idx_{table}_{column}"


def create_index_statement(table: str, column: str) -> str:
    """One CREATE INDEX statement for a foreign-key column."""
    return (
        f"CREATE INDEX {quote_identifier(index_name(table, column))} "
        f"ON {quote_identifier(table)} ({quote_identifier(column)});"
    )


def create_index_statements(schema: DatabaseSchema) -> List[str]:
    """CREATE INDEX statements for every foreign-key column in the schema.

    FK columns are the join columns of the migrated database — the serving
    path's hot lookups — so each gets a secondary index, in the same
    dependency order as the tables themselves.
    """
    statements: List[str] = []
    for table in schema.topological_order():
        for fk in table.foreign_keys:
            statements.append(create_index_statement(table.name, fk.column))
    return statements


def expected_index_names(schema: DatabaseSchema) -> Dict[str, List[str]]:
    """Per-table index names a fully-loaded target should carry."""
    expected: Dict[str, List[str]] = {}
    for table in schema.topological_order():
        names = [index_name(table.name, fk.column) for fk in table.foreign_keys]
        if names:
            expected[table.name] = names
    return expected


def insert_statements(table: Table, *, batch_size: int = 500) -> List[str]:
    """INSERT statements for a populated table (multi-row VALUES batches)."""
    if not table.rows:
        return []
    column_list = ", ".join(quote_identifier(c) for c in table.columns)
    statements: List[str] = []
    for start in range(0, len(table.rows), batch_size):
        batch = table.rows[start : start + batch_size]
        values = ",\n  ".join(
            "(" + ", ".join(render_value(v) for v in row) + ")" for row in batch
        )
        statements.append(
            f"INSERT INTO {quote_identifier(table.name)} ({column_list}) VALUES\n  {values};"
        )
    return statements


def generate_sql_dump(database: Database, *, dialect: str = "sqlite") -> str:
    """A full SQL dump (DDL + DML + secondary indexes) of a migrated database."""
    parts: List[str] = ["BEGIN TRANSACTION;"]
    parts.extend(create_schema_statements(database.schema, dialect=dialect))
    for table_schema in database.schema.topological_order():
        parts.extend(insert_statements(database.table(table_schema.name)))
    # Indexes go after the DML: bulk-load into bare tables, index once.
    parts.extend(create_index_statements(database.schema))
    parts.append("COMMIT;")
    return "\n\n".join(parts) + "\n"
