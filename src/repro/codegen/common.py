"""Shared helpers for the code generators.

Mitra's plug-ins translate the synthesized DSL program into executable code in
a target language (XSLT for XML inputs, JavaScript for JSON inputs — Section 6
and Figure 14).  This reproduction additionally emits executable *Python*
programs, which is what the evaluation harness actually runs end-to-end.

The "LOC" statistic reported in Table 1 of the paper counts only the
program-specific code, excluding built-in helpers ("without including built-in
functions, such as the implementation of getDescendants or code for parsing
the input file").  Generators therefore wrap the program-specific section in
marker comments and :func:`count_program_loc` counts only that section.
"""

from __future__ import annotations

from typing import List

BEGIN_MARKER = "BEGIN SYNTHESIZED PROGRAM"
END_MARKER = "END SYNTHESIZED PROGRAM"


def count_program_loc(source: str) -> int:
    """Count non-empty, non-comment lines between the program markers.

    If the markers are absent the whole source is counted (minus blank lines
    and comment-only lines), so the function is safe to call on any text.
    """
    lines = source.splitlines()
    begin = end = None
    for index, line in enumerate(lines):
        if BEGIN_MARKER in line and begin is None:
            begin = index + 1
        elif END_MARKER in line and end is None:
            end = index
    if begin is None or end is None or end <= begin:
        selected = lines
    else:
        selected = lines[begin:end]
    count = 0
    for line in selected:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#") or stripped.startswith("//") or stripped.startswith("<!--"):
            continue
        count += 1
    return count


def indent(lines: List[str], level: int, *, width: int = 4) -> List[str]:
    """Indent every line by ``level`` levels of ``width`` spaces."""
    prefix = " " * (width * level)
    return [prefix + line if line else line for line in lines]


def escape_string(value: str, *, quote: str = '"') -> str:
    """Escape a string literal for embedding in generated code."""
    escaped = value.replace("\\", "\\\\").replace(quote, "\\" + quote)
    return f"{quote}{escaped}{quote}"


def literal(value) -> str:
    """Render a scalar constant as a source literal (Python/JavaScript compatible)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return escape_string(str(value))
