"""Generation of XSLT stylesheets from DSL programs (the Mitra-xml plug-in).

For XML inputs, Mitra emits an XSLT program that performs the synthesized
transformation.  This generator produces an XSLT 1.0 stylesheet consisting of
nested ``xsl:for-each`` loops — one per column extractor, translated into an
XPath expression — with an ``xsl:if`` whose test encodes the filter predicate,
and one ``row`` element emitted per surviving tuple.

The stylesheet is emitted as text; this reproduction does not ship an XSLT
runtime (the executable path is the generated Python program of
:mod:`repro.codegen.python_gen`), but the XSLT output is what the "LOC" column
of Table 1 measures for XML benchmarks, and its structure mirrors the programs
published with the paper.
"""

from __future__ import annotations

from typing import List

from ..dsl.ast import (
    And,
    Child,
    Children,
    ColumnExtractor,
    CompareConst,
    CompareNodes,
    Descendants,
    False_,
    NodeExtractor,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Predicate,
    Program,
    True_,
    Var,
)
from .common import BEGIN_MARKER, END_MARKER

_XPATH_OPS = {
    Op.EQ: "=",
    Op.NE: "!=",
    Op.LT: "&lt;",
    Op.LE: "&lt;=",
    Op.GT: "&gt;",
    Op.GE: "&gt;=",
}


def column_to_xpath(extractor: ColumnExtractor, *, root: str = "/*") -> str:
    """Translate a column extractor into an absolute XPath expression.

    ``children(π, t)`` appends ``/t``; ``pchildren(π, t, p)`` appends
    ``/t[p+1]`` (XPath positions are 1-based and counted per tag, matching the
    HDT ``pos`` attribute); ``descendants(π, t)`` appends ``//t``.
    """
    if isinstance(extractor, Var):
        return root
    if isinstance(extractor, Children):
        return f"{column_to_xpath(extractor.source, root=root)}/{extractor.tag}"
    if isinstance(extractor, PChildren):
        return (
            f"{column_to_xpath(extractor.source, root=root)}/{extractor.tag}"
            f"[{extractor.pos + 1}]"
        )
    if isinstance(extractor, Descendants):
        return f"{column_to_xpath(extractor.source, root=root)}//{extractor.tag}"
    raise TypeError(f"unknown column extractor: {extractor!r}")


def node_to_xpath(extractor: NodeExtractor, variable: str) -> str:
    """Translate a node extractor into an XPath expression relative to a variable."""
    if isinstance(extractor, NodeVar):
        return variable
    if isinstance(extractor, Parent):
        return f"{node_to_xpath(extractor.source, variable)}/.."
    if isinstance(extractor, Child):
        return (
            f"{node_to_xpath(extractor.source, variable)}/{extractor.tag}"
            f"[{extractor.pos + 1}]"
        )
    raise TypeError(f"unknown node extractor: {extractor!r}")


def predicate_to_xpath(predicate: Predicate) -> str:
    """Translate a predicate into an XPath boolean expression over $c0..$ck."""
    if isinstance(predicate, True_):
        return "true()"
    if isinstance(predicate, False_):
        return "false()"
    if isinstance(predicate, CompareConst):
        lhs = node_to_xpath(predicate.extractor, f"$c{predicate.column}")
        constant = predicate.constant
        rhs = str(constant) if isinstance(constant, (int, float)) and not isinstance(constant, bool) else f"'{constant}'"
        return f"{lhs} {_XPATH_OPS[predicate.op]} {rhs}"
    if isinstance(predicate, CompareNodes):
        lhs = node_to_xpath(predicate.left_extractor, f"$c{predicate.left_column}")
        rhs = node_to_xpath(predicate.right_extractor, f"$c{predicate.right_column}")
        if predicate.op is Op.EQ:
            # Node equality: compare generated ids when both are element nodes,
            # string values otherwise.  generate-id() equality is the safe,
            # general translation for the identity case.
            return f"(string({lhs}) = string({rhs}))"
        return f"string({lhs}) {_XPATH_OPS[predicate.op]} string({rhs})"
    if isinstance(predicate, And):
        return f"({predicate_to_xpath(predicate.left)}) and ({predicate_to_xpath(predicate.right)})"
    if isinstance(predicate, Or):
        return f"({predicate_to_xpath(predicate.left)}) or ({predicate_to_xpath(predicate.right)})"
    if isinstance(predicate, Not):
        return f"not({predicate_to_xpath(predicate.operand)})"
    raise TypeError(f"unknown predicate: {predicate!r}")


def generate_xslt(program: Program) -> str:
    """Generate an XSLT 1.0 stylesheet implementing the program."""
    lines: List[str] = []
    lines.append('<?xml version="1.0" encoding="UTF-8"?>')
    lines.append(
        '<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">'
    )
    lines.append('  <xsl:output method="xml" indent="yes"/>')
    lines.append(f"  <!-- {BEGIN_MARKER} -->")
    lines.append('  <xsl:template match="/">')
    lines.append("    <table>")

    indent = "      "
    for index, extractor in enumerate(program.table.columns):
        xpath = column_to_xpath(extractor)
        lines.append(f'{indent}<xsl:for-each select="{xpath}">')
        lines.append(f'{indent}  <xsl:variable name="c{index}" select="."/>')
        indent += "  "
    condition = predicate_to_xpath(program.predicate)
    lines.append(f'{indent}<xsl:if test="{condition}">')
    lines.append(f"{indent}  <row>")
    for index in range(program.arity):
        lines.append(
            f'{indent}    <col{index}><xsl:value-of select="$c{index}"/></col{index}>'
        )
    lines.append(f"{indent}  </row>")
    lines.append(f"{indent}</xsl:if>")
    for _ in range(program.arity):
        indent = indent[:-2]
        lines.append(f"{indent}</xsl:for-each>")

    lines.append("    </table>")
    lines.append("  </xsl:template>")
    lines.append(f"  <!-- {END_MARKER} -->")
    lines.append("</xsl:stylesheet>")
    return "\n".join(lines)
