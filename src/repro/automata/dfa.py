"""Deterministic finite automata over DSL-operator alphabets.

Section 5.1 of the paper learns column extractors by building, for each
input-output example, a DFA whose states are sets of HDT nodes and whose
alphabet symbols are the (instantiated) column-extraction operators
``children_tag``, ``pchildren_tag,pos`` and ``descendants_tag``.  The language
of the DFA is exactly the set of operator sequences (words) whose induced
column extractor is consistent with the example; consistency across multiple
examples is obtained by DFA intersection.

This module provides a small generic DFA implementation:

* :class:`DFA` — states, alphabet, transition map, initial state, accepting
  states;
* :meth:`DFA.intersect` — the standard product construction;
* :meth:`DFA.enumerate_words` — shortest-first enumeration of accepted words
  (bounded in length and count), which is how the synthesizer extracts column
  extraction programs from the automaton;
* :meth:`DFA.prune` — removal of states that cannot reach an accepting state,
  keeping the product construction small.

States are opaque hashable values; symbols are hashable tuples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

State = Hashable
Symbol = Hashable
Word = Tuple[Symbol, ...]


@dataclass
class DFA:
    """A deterministic finite automaton.

    The transition function is partial: missing entries are treated as going to
    an implicit dead state.
    """

    states: Set[State]
    alphabet: Set[Symbol]
    transitions: Dict[Tuple[State, Symbol], State]
    initial: State
    accepting: Set[State]

    # ------------------------------------------------------------ invariants
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        if self.initial not in self.states:
            raise ValueError("initial state is not a state")
        if not self.accepting.issubset(self.states):
            raise ValueError("accepting states must be a subset of states")
        for (src, sym), dst in self.transitions.items():
            if src not in self.states or dst not in self.states:
                raise ValueError(f"transition {src!r} --{sym!r}--> {dst!r} uses unknown state")
            if sym not in self.alphabet:
                raise ValueError(f"transition symbol {sym!r} not in alphabet")

    # ---------------------------------------------------------------- basics
    def step(self, state: State, symbol: Symbol) -> Optional[State]:
        """Follow one transition; ``None`` means the implicit dead state."""
        return self.transitions.get((state, symbol))

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Return True iff the DFA accepts the given word."""
        state: Optional[State] = self.initial
        for symbol in word:
            if state is None:
                return False
            state = self.step(state, symbol)
        return state is not None and state in self.accepting

    def successors(self, state: State) -> Iterator[Tuple[Symbol, State]]:
        """All outgoing transitions of a state."""
        for (src, sym), dst in self.transitions.items():
            if src == state:
                yield sym, dst

    def is_empty(self) -> bool:
        """True iff the DFA accepts no word at all."""
        return not self._reachable_accepting()

    def num_transitions(self) -> int:
        return len(self.transitions)

    # ----------------------------------------------------------- reachability
    def _forward_reachable(self) -> Set[State]:
        seen: Set[State] = {self.initial}
        frontier = deque([self.initial])
        out_edges = self._out_edges()
        while frontier:
            state = frontier.popleft()
            for _, dst in out_edges.get(state, ()):  # type: ignore[arg-type]
                if dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        return seen

    def _backward_reachable(self, targets: Set[State]) -> Set[State]:
        in_edges: Dict[State, List[State]] = {}
        for (src, _), dst in self.transitions.items():
            in_edges.setdefault(dst, []).append(src)
        seen: Set[State] = set(targets)
        frontier = deque(targets)
        while frontier:
            state = frontier.popleft()
            for src in in_edges.get(state, []):
                if src not in seen:
                    seen.add(src)
                    frontier.append(src)
        return seen

    def _reachable_accepting(self) -> Set[State]:
        forward = self._forward_reachable()
        return forward & self.accepting

    def _out_edges(self) -> Dict[State, List[Tuple[Symbol, State]]]:
        out: Dict[State, List[Tuple[Symbol, State]]] = {}
        for (src, sym), dst in self.transitions.items():
            out.setdefault(src, []).append((sym, dst))
        return out

    # -------------------------------------------------------------- pruning
    def prune(self) -> "DFA":
        """Remove states that are unreachable or cannot reach an accepting state."""
        forward = self._forward_reachable()
        live_accepting = forward & self.accepting
        if not live_accepting:
            return DFA(
                states={self.initial},
                alphabet=set(self.alphabet),
                transitions={},
                initial=self.initial,
                accepting=set(),
            )
        useful = self._backward_reachable(live_accepting) & forward
        useful.add(self.initial)
        transitions = {
            (src, sym): dst
            for (src, sym), dst in self.transitions.items()
            if src in useful and dst in useful
        }
        return DFA(
            states=useful,
            alphabet=set(self.alphabet),
            transitions=transitions,
            initial=self.initial,
            accepting=live_accepting,
        )

    # --------------------------------------------------------- intersection
    def intersect(self, other: "DFA") -> "DFA":
        """Product construction: accepts exactly the words accepted by both DFAs.

        Only the reachable part of the product is built, and the result is
        pruned so that dead branches do not slow down later intersections.
        """
        alphabet = self.alphabet & other.alphabet
        initial = (self.initial, other.initial)
        states: Set[State] = {initial}
        transitions: Dict[Tuple[State, Symbol], State] = {}
        accepting: Set[State] = set()
        frontier = deque([initial])
        self_out = self._out_edges()
        while frontier:
            pair = frontier.popleft()
            left, right = pair
            if left in self.accepting and right in other.accepting:
                accepting.add(pair)
            for sym, left_dst in self_out.get(left, []):
                if sym not in alphabet:
                    continue
                right_dst = other.step(right, sym)
                if right_dst is None:
                    continue
                dst = (left_dst, right_dst)
                transitions[(pair, sym)] = dst
                if dst not in states:
                    states.add(dst)
                    frontier.append(dst)
        product = DFA(
            states=states,
            alphabet=alphabet,
            transitions=transitions,
            initial=initial,
            accepting=accepting,
        )
        return product.prune()

    # ---------------------------------------------------------- enumeration
    def enumerate_words(self, max_length: int = 8, max_words: int = 200) -> List[Word]:
        """Enumerate accepted words, shortest first (breadth-first search).

        The search explores paths (not just states) so that distinct words
        leading to the same state are both reported; it is bounded by
        ``max_length`` and ``max_words`` to keep enumeration tractable, which
        corresponds to the bounded program-length exploration the paper relies
        on in practice.
        """
        results: List[Word] = []
        frontier: deque = deque([(self.initial, ())])
        out_edges = self._out_edges()
        while frontier and len(results) < max_words:
            state, word = frontier.popleft()
            if state in self.accepting:
                results.append(word)
                if len(results) >= max_words:
                    break
            if len(word) >= max_length:
                continue
            for sym, dst in sorted(
                out_edges.get(state, []), key=lambda item: repr(item[0])
            ):
                frontier.append((dst, word + (sym,)))
        return results

    def shortest_word(self, max_length: int = 12) -> Optional[Word]:
        """The shortest accepted word, or ``None``."""
        words = self.enumerate_words(max_length=max_length, max_words=1)
        return words[0] if words else None


def intersect_all(automata: List[DFA]) -> DFA:
    """Intersect a non-empty list of DFAs left to right."""
    if not automata:
        raise ValueError("cannot intersect an empty list of automata")
    result = automata[0].prune()
    for dfa in automata[1:]:
        result = result.intersect(dfa)
        if result.is_empty():
            break
    return result


# --------------------------------------------------------------------------- #
# Lazy product enumeration
# --------------------------------------------------------------------------- #


class LazyComponent:
    """One factor of a lazy product automaton.

    Implementations expose an ``initial`` state handle plus two callables;
    states are opaque hashable handles (the column learner interns node sets
    and hands out integer ids).  A ``step`` returning ``None`` means the
    implicit dead state.
    """

    initial: State

    def step(self, state: State, symbol: Symbol) -> Optional[State]:  # pragma: no cover - interface
        raise NotImplementedError

    def is_accepting(self, state: State) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


def enumerate_product_words(
    components: Sequence[LazyComponent],
    alphabet: Sequence[Symbol],
    *,
    max_length: int = 8,
    max_words: int = 200,
) -> List[Word]:
    """Shortest-first word enumeration over a product automaton built on demand.

    Equivalent to ``intersect_all([...]).enumerate_words(...)`` but without
    ever materializing the per-factor automata or their product: product
    states are expanded only when the breadth-first path enumeration reaches
    them, and each (state, symbol) expansion is delegated to the components'
    ``step`` functions (memoized per product state).

    To reproduce the eager path byte-for-byte, ``alphabet`` must be iterated
    in the same order the eager enumeration sorts out-edges — pass it sorted
    by ``repr``; this function preserves the given order.  Paths (not states)
    are explored, so distinct words reaching the same product state are all
    reported, exactly like :meth:`DFA.enumerate_words`.

    An empty result means no accepting product state exists within the
    ``max_length`` exploration horizon — the search cannot tell a genuinely
    empty intersection from one whose shortest witness is longer than the
    bound (every accepting state it *can* discover is reachable within the
    bound and therefore yields a word).
    """
    initial: Tuple[State, ...] = tuple(c.initial for c in components)

    # Single-component products (one input-output example — the migration
    # engine's case) read cached full-alphabet out-edge lists straight off the
    # component, so the per-tree transition graph is expanded at most once for
    # the *entire* multi-table synthesis run.
    single = components[0] if len(components) == 1 else None
    single_successors = getattr(single, "successors", None) if single else None

    # Phase 1 — expand the reachable product, one expansion per STATE (not per
    # path: the path enumeration below revisits states exponentially often in
    # dead regions, so transitions are computed here exactly once).  Depth is
    # bounded by max_length: deeper states cannot appear on an enumerable path.
    out_edges: Dict[Tuple[State, ...], List[Tuple[Symbol, Tuple[State, ...]]]] = {}
    accepting: Set[Tuple[State, ...]] = set()
    depth_of: Dict[Tuple[State, ...], int] = {initial: 0}
    if all(c.is_accepting(s) for c, s in zip(components, initial)):
        accepting.add(initial)
    state_frontier: deque = deque([initial])
    while state_frontier:
        state = state_frontier.popleft()
        depth = depth_of[state]
        if depth >= max_length:
            out_edges.setdefault(state, [])
            continue
        edges: List[Tuple[Symbol, Tuple[State, ...]]] = []
        if single_successors is not None:
            for symbol, dst in single_successors(state[0]):
                successor = (dst,)
                edges.append((symbol, successor))
                if successor not in depth_of:
                    depth_of[successor] = depth + 1
                    if single.is_accepting(dst):
                        accepting.add(successor)
                    state_frontier.append(successor)
        else:
            for symbol in alphabet:
                nxt: List[State] = []
                for component, comp_state in zip(components, state):
                    dst = component.step(comp_state, symbol)
                    if dst is None:
                        break
                    nxt.append(dst)
                else:
                    successor = tuple(nxt)
                    edges.append((symbol, successor))
                    if successor not in depth_of:
                        depth_of[successor] = depth + 1
                        if all(
                            c.is_accepting(s) for c, s in zip(components, successor)
                        ):
                            accepting.add(successor)
                        state_frontier.append(successor)
        out_edges[state] = edges

    if not accepting:
        return []

    # Phase 2 — backward prune: drop states that cannot reach an accepting
    # state, like DFA.prune() does before the eager enumeration.  Dead states
    # never produce a word, and removing them does not reorder the accepted
    # paths of the FIFO search, so the word list is unchanged — only the
    # exponential wandering through dead regions is.
    in_edges: Dict[Tuple[State, ...], List[Tuple[State, ...]]] = {}
    for src, edges in out_edges.items():
        for _, dst in edges:
            in_edges.setdefault(dst, []).append(src)
    useful: Set[Tuple[State, ...]] = set(accepting)
    prune_frontier: deque = deque(accepting)
    while prune_frontier:
        state = prune_frontier.popleft()
        for src in in_edges.get(state, ()):  # type: ignore[arg-type]
            if src not in useful:
                useful.add(src)
                prune_frontier.append(src)

    # Phase 3 — shortest-first path enumeration over the pruned graph,
    # identical to DFA.enumerate_words (alphabet order == repr-sorted order).
    results: List[Word] = []
    frontier: deque = deque([(initial, ())] if initial in useful else [])
    while frontier and len(results) < max_words:
        state, word = frontier.popleft()
        if state in accepting:
            results.append(word)
            if len(results) >= max_words:
                break
        if len(word) >= max_length:
            continue
        for symbol, dst in out_edges.get(state, ()):  # type: ignore[arg-type]
            if dst in useful:
                frontier.append((dst, word + (symbol,)))
    return results
