"""Deterministic finite automata used by the column-extractor learner."""

from .dfa import (
    DFA,
    LazyComponent,
    enumerate_product_words,
    intersect_all,
)

__all__ = [
    "DFA",
    "LazyComponent",
    "enumerate_product_words",
    "intersect_all",
]
