"""Deterministic finite automata used by the column-extractor learner."""

from .dfa import DFA, intersect_all

__all__ = ["DFA", "intersect_all"]
