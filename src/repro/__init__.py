"""repro — a reproduction of Mitra (VLDB 2018).

Mitra is a programming-by-example system that migrates hierarchical documents
(XML, JSON) to relational tables.  This package reimplements the full system in
Python:

* :mod:`repro.hdt` — hierarchical data trees and the XML/JSON plug-ins,
* :mod:`repro.dsl` — the tree-to-table DSL, its semantics and cost model,
* :mod:`repro.automata` — the DFA machinery behind column-extractor learning,
* :mod:`repro.synthesis` — the synthesis core (Algorithms 1-4 of the paper),
* :mod:`repro.optimizer` — cross-product-free execution of synthesized programs,
* :mod:`repro.codegen` — Python / XSLT / JavaScript / SQL code generation,
* :mod:`repro.relational` — the relational substrate (tables, schemas, keys),
* :mod:`repro.migration` — whole-database migration with key generation,
* :mod:`repro.runtime` — the production runtime: durable JSON plans, plan
  caching, a SQLite backend, streaming execution and the ``python -m repro``
  CLI,
* :mod:`repro.benchmarks_suite` — the 98-task StackOverflow-style suite,
* :mod:`repro.datasets` — synthetic DBLP / IMDB / MONDIAL / YELP generators,
* :mod:`repro.evaluation` — harnesses regenerating Table 1, Table 2 and the
  scalability experiment of the paper.

Quickstart
----------
>>> from repro import xml_to_hdt, synthesize
>>> tree = xml_to_hdt("<users><user><name>Ann</name><age>31</age></user></users>")
>>> result = synthesize([(tree, [("Ann", 31)])])
>>> result.success
True
"""

from .hdt import (
    HDT,
    Node,
    build_tree,
    hdt_to_json,
    hdt_to_json_string,
    hdt_to_xml,
    json_file_to_hdt,
    json_to_hdt,
    xml_file_to_hdt,
    xml_to_hdt,
)
from .dsl import Program, pretty_program, run_program
from .synthesis import (
    SynthesisConfig,
    SynthesisResult,
    SynthesisTask,
    Synthesizer,
    ExamplePair,
    synthesize,
)

__version__ = "1.0.0"

__all__ = [
    "HDT",
    "Node",
    "build_tree",
    "xml_to_hdt",
    "xml_file_to_hdt",
    "hdt_to_xml",
    "json_to_hdt",
    "json_file_to_hdt",
    "hdt_to_json",
    "hdt_to_json_string",
    "Program",
    "pretty_program",
    "run_program",
    "SynthesisConfig",
    "SynthesisResult",
    "SynthesisTask",
    "Synthesizer",
    "ExamplePair",
    "synthesize",
    "__version__",
]
