"""Reproduction of Table 1: the 98-task StackOverflow benchmark evaluation.

For every task in the suite, the harness runs the synthesizer, checks that the
learned program reproduces the example output, and records: success, synthesis
time, example sizes, the number of atomic predicates of the learned program,
and the generated-code LOC (XSLT for XML tasks, JavaScript for JSON tasks —
matching the paper's "LOC" column).  Results are aggregated per format and per
column-count bucket exactly like Table 1.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..benchmarks_suite.stackoverflow import BenchmarkTask, load_suite
from ..codegen.common import count_program_loc
from ..codegen.js_gen import generate_javascript
from ..codegen.xslt_gen import generate_xslt
from ..synthesis.config import DEFAULT_CONFIG, SynthesisConfig
from ..synthesis.predicate_learner import row_in_table
from ..synthesis.synthesizer import ExamplePair, SynthesisTask, Synthesizer


@dataclass
class TaskResult:
    """Outcome of one benchmark task."""

    task: BenchmarkTask
    solved: bool
    synthesis_time: float
    num_predicates: int = 0
    generated_loc: int = 0
    message: str = ""


@dataclass
class BucketStats:
    """One row of Table 1 (a format/column-count bucket)."""

    fmt: str
    bucket: str
    total: int = 0
    solved: int = 0
    times: List[float] = field(default_factory=list)
    elements: List[int] = field(default_factory=list)
    rows: List[int] = field(default_factory=list)
    predicates: List[int] = field(default_factory=list)
    locs: List[int] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        def med(values):
            return round(statistics.median(values), 2) if values else 0.0

        def avg(values):
            return round(statistics.fmean(values), 2) if values else 0.0

        return {
            "format": self.fmt,
            "#cols": self.bucket,
            "total": self.total,
            "solved": self.solved,
            "median_time_s": med(self.times),
            "avg_time_s": avg(self.times),
            "median_elements": med(self.elements),
            "avg_elements": avg(self.elements),
            "median_rows": med(self.rows),
            "avg_rows": avg(self.rows),
            "avg_preds": avg(self.predicates),
            "avg_loc": avg(self.locs),
        }


@dataclass
class Table1Report:
    """The complete Table 1 reproduction."""

    results: List[TaskResult]
    buckets: List[BucketStats]

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def solved(self) -> int:
        return sum(1 for r in self.results if r.solved)

    @property
    def solve_rate(self) -> float:
        return self.solved / self.total if self.total else 0.0

    def render(self) -> str:
        """ASCII rendering of the Table 1 reproduction."""
        header = (
            f"{'fmt':5} {'#cols':6} {'total':6} {'solved':7} {'med(s)':8} {'avg(s)':8} "
            f"{'med#el':7} {'avg#el':7} {'med#rows':9} {'avg#rows':9} {'#preds':7} {'LOC':6}"
        )
        lines = [header, "-" * len(header)]
        for bucket in self.buckets:
            row = bucket.as_row()
            lines.append(
                f"{row['format']:5} {row['#cols']:6} {row['total']:6} {row['solved']:7} "
                f"{row['median_time_s']:<8} {row['avg_time_s']:<8} {row['median_elements']:<7} "
                f"{row['avg_elements']:<7} {row['median_rows']:<9} {row['avg_rows']:<9} "
                f"{row['avg_preds']:<7} {row['avg_loc']:<6}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"Overall: {self.solved}/{self.total} solved ({100 * self.solve_rate:.1f}%)"
        )
        return "\n".join(lines)


def run_task(task: BenchmarkTask, config: SynthesisConfig = DEFAULT_CONFIG) -> TaskResult:
    """Run the synthesizer on one benchmark task and validate the result."""
    synthesis_task = SynthesisTask(
        examples=[ExamplePair(task.tree, [tuple(r) for r in task.rows])], name=task.name
    )
    synthesizer = Synthesizer(config)
    start = time.perf_counter()
    result = synthesizer.synthesize(synthesis_task)
    elapsed = time.perf_counter() - start
    if not result.success or result.program is None:
        return TaskResult(task, solved=False, synthesis_time=elapsed, message=result.message)
    generator = generate_xslt if task.format == "xml" else generate_javascript
    loc = count_program_loc(generator(result.program))
    return TaskResult(
        task,
        solved=True,
        synthesis_time=elapsed,
        num_predicates=result.program.num_atomic_predicates(),
        generated_loc=loc,
    )


def run_table1(
    tasks: Optional[Sequence[BenchmarkTask]] = None,
    config: SynthesisConfig = DEFAULT_CONFIG,
    *,
    limit: Optional[int] = None,
) -> Table1Report:
    """Run the Table 1 experiment (optionally on a subset of the suite)."""
    tasks = list(tasks) if tasks is not None else load_suite()
    if limit is not None:
        tasks = tasks[:limit]
    results = [run_task(task, config) for task in tasks]

    buckets: Dict[tuple, BucketStats] = {}
    for result in results:
        key = (result.task.format, result.task.bucket)
        bucket = buckets.setdefault(key, BucketStats(fmt=key[0], bucket=key[1]))
        bucket.total += 1
        bucket.elements.append(result.task.num_elements)
        bucket.rows.append(len(result.task.rows))
        if result.solved:
            bucket.solved += 1
            bucket.times.append(result.synthesis_time)
            bucket.predicates.append(result.num_predicates)
            bucket.locs.append(result.generated_loc)

    order = {"<=2": 0, "3": 1, "4": 2, ">=5": 3}
    ordered = sorted(buckets.values(), key=lambda b: (b.fmt, order.get(b.bucket, 9)))
    return Table1Report(results=results, buckets=ordered)
