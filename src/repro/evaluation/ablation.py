"""Ablation studies (E5, E6 in DESIGN.md).

Two design choices of the paper are quantified on this substrate:

* **E5 — program optimization** (Section 6 / Appendix C): execute synthesized
  programs with the cross-product-free optimizer versus the naive formal
  semantics, on growing documents.
* **E6 — predicate learning strategy** (Section 5.2): compare the minimum-cover
  ILP + Quine–McCluskey pipeline against the greedy cover and against the
  brute-force conjunctive baseline synthesizer, reporting predicate counts and
  synthesis times on a sample of the benchmark suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..benchmarks_suite.stackoverflow import BenchmarkTask, load_suite
from ..dsl.semantics import run_program
from ..optimizer.optimize import execute
from ..synthesis.baseline import BaselineSynthesizer
from ..synthesis.config import SynthesisConfig
from ..synthesis.synthesizer import ExamplePair, SynthesisTask, Synthesizer
from .scalability import example_social_network, social_network_document


@dataclass
class OptimizerAblationPoint:
    """Naive vs optimized execution time for one document size."""

    num_persons: int
    naive_seconds: float
    optimized_seconds: float

    @property
    def speedup(self) -> float:
        if self.optimized_seconds == 0:
            return float("inf")
        return self.naive_seconds / self.optimized_seconds


def run_optimizer_ablation(sizes: Sequence[int] = (20, 50, 100)) -> List[OptimizerAblationPoint]:
    """E5: naive cross-product semantics vs the optimizer, same program."""
    task = example_social_network()
    result = Synthesizer(SynthesisConfig.for_migration()).synthesize(task)
    if not result.success or result.program is None:
        raise RuntimeError(f"ablation program synthesis failed: {result.message}")
    program = result.program

    points: List[OptimizerAblationPoint] = []
    for size in sizes:
        document = social_network_document(size)
        start = time.perf_counter()
        naive_rows = run_program(program, document)
        naive_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        optimized_rows = execute(program, document)
        optimized_elapsed = time.perf_counter() - start
        if set(naive_rows) != set(optimized_rows):
            raise RuntimeError("optimizer changed program semantics")
        points.append(OptimizerAblationPoint(size, naive_elapsed, optimized_elapsed))
    return points


@dataclass
class PredicateAblationResult:
    """Comparison of predicate-learning strategies on one task."""

    task_name: str
    ilp_time: float
    ilp_predicates: int
    greedy_time: float
    greedy_predicates: int
    baseline_time: float
    baseline_solved: bool


def run_predicate_ablation(sample_size: int = 6) -> List[PredicateAblationResult]:
    """E6: exact minimum-cover vs greedy cover vs the enumerative baseline."""
    tasks = [t for t in load_suite() if t.expressible][:sample_size]
    results: List[PredicateAblationResult] = []
    for task in tasks:
        synthesis_task = SynthesisTask(
            examples=[ExamplePair(task.tree, [tuple(r) for r in task.rows])], name=task.name
        )

        ilp_config = SynthesisConfig(cover_strategy="ilp")
        start = time.perf_counter()
        ilp_result = Synthesizer(ilp_config).synthesize(synthesis_task)
        ilp_time = time.perf_counter() - start

        greedy_config = SynthesisConfig(cover_strategy="greedy")
        start = time.perf_counter()
        greedy_result = Synthesizer(greedy_config).synthesize(synthesis_task)
        greedy_time = time.perf_counter() - start

        start = time.perf_counter()
        baseline_result = BaselineSynthesizer(SynthesisConfig.fast()).synthesize(synthesis_task)
        baseline_time = time.perf_counter() - start

        results.append(
            PredicateAblationResult(
                task_name=task.name,
                ilp_time=ilp_time,
                ilp_predicates=(
                    ilp_result.program.num_atomic_predicates() if ilp_result.success else -1
                ),
                greedy_time=greedy_time,
                greedy_predicates=(
                    greedy_result.program.num_atomic_predicates() if greedy_result.success else -1
                ),
                baseline_time=baseline_time,
                baseline_solved=baseline_result.success,
            )
        )
    return results


def render_ablation_report(
    optimizer_points: List[OptimizerAblationPoint],
    predicate_results: List[PredicateAblationResult],
) -> str:
    """Human-readable rendering of both ablations."""
    lines = ["== E5: naive vs optimized execution =="]
    for point in optimizer_points:
        lines.append(
            f"persons={point.num_persons:<6} naive={point.naive_seconds:.3f}s "
            f"optimized={point.optimized_seconds:.3f}s speedup={point.speedup:.1f}x"
        )
    lines.append("")
    lines.append("== E6: predicate learning strategies ==")
    for result in predicate_results:
        lines.append(
            f"{result.task_name:34} ilp={result.ilp_time:.2f}s/{result.ilp_predicates}p "
            f"greedy={result.greedy_time:.2f}s/{result.greedy_predicates}p "
            f"baseline={result.baseline_time:.2f}s solved={result.baseline_solved}"
        )
    return "\n".join(lines)
