"""Reproduction of Table 2: migrating the four datasets to full databases.

For each dataset bundle (DBLP, IMDB, MONDIAL, YELP), the harness learns one
program per target table from the bundle's example document, runs every
program on a generated full document, loads the resulting database, validates
its key constraints, and reports the Table 2 columns: #tables, #cols, total
and per-table synthesis time, total rows, total and per-table execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..datasets import all_datasets
from ..datasets.base import DatasetBundle
from ..migration.engine import MigrationEngine, MigrationError


@dataclass
class DatasetReport:
    """One row of Table 2."""

    name: str
    fmt: str
    num_tables: int
    num_columns: int
    document_nodes: int
    synthesis_total_s: float
    synthesis_avg_s: float
    total_rows: int
    execution_total_s: float
    execution_avg_s: float
    tables_matching_ground_truth: int
    fk_violations: int
    error: str = ""

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.name,
            "format": self.fmt,
            "#tables": self.num_tables,
            "#cols": self.num_columns,
            "doc_nodes": self.document_nodes,
            "synth_total_s": round(self.synthesis_total_s, 2),
            "synth_avg_s": round(self.synthesis_avg_s, 2),
            "#rows": self.total_rows,
            "exec_total_s": round(self.execution_total_s, 2),
            "exec_avg_s": round(self.execution_avg_s, 2),
            "tables_ok": self.tables_matching_ground_truth,
            "fk_violations": self.fk_violations,
        }


@dataclass
class Table2Report:
    """The complete Table 2 reproduction."""

    datasets: List[DatasetReport]

    def render(self) -> str:
        header = (
            f"{'dataset':9} {'fmt':5} {'#tab':5} {'#col':5} {'nodes':8} {'synTot(s)':10} "
            f"{'synAvg(s)':10} {'#rows':8} {'exeTot(s)':10} {'exeAvg(s)':10} {'ok':4} {'fkV':4}"
        )
        lines = [header, "-" * len(header)]
        for report in self.datasets:
            row = report.as_row()
            lines.append(
                f"{row['dataset']:9} {row['format']:5} {row['#tables']:<5} {row['#cols']:<5} "
                f"{row['doc_nodes']:<8} {row['synth_total_s']:<10} {row['synth_avg_s']:<10} "
                f"{row['#rows']:<8} {row['exec_total_s']:<10} {row['exec_avg_s']:<10} "
                f"{row['tables_ok']:<4} {row['fk_violations']:<4}"
            )
            if report.error:
                lines.append(f"    error: {report.error}")
        return "\n".join(lines)


def run_dataset(bundle: DatasetBundle, *, scale: int) -> DatasetReport:
    """Migrate one dataset bundle and compare against its ground truth."""
    engine = MigrationEngine()
    document = bundle.generate(scale)
    try:
        result = engine.migrate(bundle.migration_spec(), document, validate=False)
    except MigrationError as error:
        return DatasetReport(
            name=bundle.name,
            fmt=bundle.format,
            num_tables=bundle.num_tables,
            num_columns=bundle.num_columns,
            document_nodes=document.size(),
            synthesis_total_s=0.0,
            synthesis_avg_s=0.0,
            total_rows=0,
            execution_total_s=0.0,
            execution_avg_s=0.0,
            tables_matching_ground_truth=0,
            fk_violations=0,
            error=str(error),
        )
    expected = bundle.ground_truth(scale)
    matching = sum(
        1 for table, count in expected.items() if result.per_table_rows.get(table) == count
    )
    violations = result.database.validate_foreign_keys()
    tables = max(1, bundle.num_tables)
    return DatasetReport(
        name=bundle.name,
        fmt=bundle.format,
        num_tables=bundle.num_tables,
        num_columns=bundle.num_columns,
        document_nodes=document.size(),
        synthesis_total_s=result.synthesis_time,
        synthesis_avg_s=result.synthesis_time / tables,
        total_rows=result.total_rows,
        execution_total_s=result.execution_time,
        execution_avg_s=result.execution_time / tables,
        tables_matching_ground_truth=matching,
        fk_violations=len(violations),
    )


def run_table2(
    *, scale: int = 10, datasets: Optional[Dict[str, DatasetBundle]] = None
) -> Table2Report:
    """Run the Table 2 experiment across all (or selected) datasets."""
    bundles = datasets if datasets is not None else all_datasets(scale)
    reports = [run_dataset(bundle, scale=scale) for bundle in bundles.values()]
    return Table2Report(datasets=reports)
