"""Evaluation harnesses regenerating the paper's tables, figures and ablations."""

from .ablation import (
    OptimizerAblationPoint,
    PredicateAblationResult,
    render_ablation_report,
    run_optimizer_ablation,
    run_predicate_ablation,
)
from .scalability import ScalabilityReport, run_scalability, social_network_document
from .table1 import Table1Report, TaskResult, run_table1, run_task
from .table2 import DatasetReport, Table2Report, run_dataset, run_table2

__all__ = [
    "OptimizerAblationPoint",
    "PredicateAblationResult",
    "render_ablation_report",
    "run_optimizer_ablation",
    "run_predicate_ablation",
    "ScalabilityReport",
    "run_scalability",
    "social_network_document",
    "Table1Report",
    "TaskResult",
    "run_table1",
    "run_task",
    "DatasetReport",
    "Table2Report",
    "run_dataset",
    "run_table2",
]
