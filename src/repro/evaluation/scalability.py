"""Reproduction of the §7.1 "Performance" experiment (scalability of generated code).

The paper runs the 48 synthesized XSLT programs on ~512 MB XML documents and
reports that almost all complete within about a minute.  On this substrate we
synthesize a representative program once (from a small example) and execute it
on generated documents of increasing size, reporting rows produced, execution
time and throughput for both execution strategies:

* the optimized, cross-product-free executor (:mod:`repro.optimizer`), and
* the generated standalone Python program (:mod:`repro.codegen.python_gen`).

The *shape* to reproduce is: execution time grows roughly linearly with the
document size and stays far below synthesis-search blow-up, while the naive
cross-product semantics becomes rapidly unusable (covered by the optimizer
ablation, E5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..codegen.python_gen import compile_program
from ..datasets.base import rng
from ..dsl.ast import Program
from ..hdt.tree import HDT, build_tree
from ..optimizer.optimize import execute
from ..synthesis.synthesizer import ExamplePair, SynthesisTask, Synthesizer
from ..synthesis.config import SynthesisConfig


@dataclass
class ScalePoint:
    """Measurements for one document size."""

    num_persons: int
    document_nodes: int
    rows_produced: int
    optimized_seconds: float
    generated_python_seconds: float

    def as_row(self) -> Dict[str, object]:
        return {
            "persons": self.num_persons,
            "nodes": self.document_nodes,
            "rows": self.rows_produced,
            "optimized_s": round(self.optimized_seconds, 3),
            "generated_python_s": round(self.generated_python_seconds, 3),
        }


@dataclass
class ScalabilityReport:
    """The scalability experiment output."""

    program: Program
    points: List[ScalePoint]

    def render(self) -> str:
        header = f"{'persons':9} {'nodes':9} {'rows':8} {'optimized(s)':13} {'generated(s)':13}"
        lines = [header, "-" * len(header)]
        for point in self.points:
            row = point.as_row()
            lines.append(
                f"{row['persons']:<9} {row['nodes']:<9} {row['rows']:<8} "
                f"{row['optimized_s']:<13} {row['generated_python_s']:<13}"
            )
        return "\n".join(lines)


def social_network_document(num_persons: int, *, seed: int = 23) -> HDT:
    """A scaled version of the paper's motivating social-network document."""
    generator = rng(seed)
    persons = []
    for index in range(num_persons):
        friends = []
        for _ in range(1 + generator.randrange(3)):
            friends.append(
                {"fid": generator.randrange(num_persons), "years": 1 + generator.randrange(20)}
            )
        persons.append(
            {
                "id": index,
                "name": f"person{index}",
                "Friendship": {"Friend": friends},
            }
        )
    return build_tree({"Person": persons}, tag="root")


def example_social_network() -> SynthesisTask:
    """The small input-output example used to synthesize the scalable program.

    Friendship durations are unique within the example so that the only
    programs consistent with it are the ones that structurally link each
    ``years`` value to its person — i.e. programs that generalize correctly.
    """
    tree = build_tree(
        {
            "Person": [
                {"id": 0, "name": "person0", "Friendship": {"Friend": [{"fid": 1, "years": 3}, {"fid": 2, "years": 5}]}},
                {"id": 1, "name": "person1", "Friendship": {"Friend": [{"fid": 0, "years": 7}]}},
                {"id": 2, "name": "person2", "Friendship": {"Friend": [{"fid": 0, "years": 9}]}},
            ]
        },
        tag="root",
    )
    rows = [("person0", 3), ("person0", 5), ("person1", 7), ("person2", 9)]
    return SynthesisTask(examples=[ExamplePair(tree, rows)], name="scalability")


def run_scalability(
    sizes: Sequence[int] = (100, 500, 2000),
    *,
    config: SynthesisConfig = SynthesisConfig.for_migration(),
) -> ScalabilityReport:
    """Synthesize once, then execute on documents of increasing size."""
    task = example_social_network()
    result = Synthesizer(config).synthesize(task)
    if not result.success or result.program is None:
        raise RuntimeError(f"scalability program synthesis failed: {result.message}")
    program = result.program
    generated = compile_program(program)

    points: List[ScalePoint] = []
    for size in sizes:
        document = social_network_document(size)
        start = time.perf_counter()
        optimized_rows = execute(program, document)
        optimized_elapsed = time.perf_counter() - start

        # The generated Python program operates on its own lightweight node
        # class; rebuild the document through the generated loader interface by
        # traversing the HDT directly (cheap relative to execution).
        start = time.perf_counter()
        generated_rows = generated(_to_generated_nodes(document))
        generated_elapsed = time.perf_counter() - start

        points.append(
            ScalePoint(
                num_persons=size,
                document_nodes=document.size(),
                rows_produced=len(optimized_rows),
                optimized_seconds=optimized_elapsed,
                generated_python_seconds=generated_elapsed,
            )
        )
        if len(generated_rows) != len(optimized_rows):
            raise RuntimeError(
                "generated program and optimizer disagree: "
                f"{len(generated_rows)} vs {len(optimized_rows)} rows"
            )
    return ScalabilityReport(program=program, points=points)


class _GenNode:
    """Minimal node type matching the generated runtime's expectations."""

    __slots__ = ("tag", "pos", "data", "parent", "children")

    def __init__(self, tag, pos, data):
        self.tag = tag
        self.pos = pos
        self.data = data
        self.parent = None
        self.children = []

    def is_leaf(self):
        return not self.children


def _to_generated_nodes(tree: HDT) -> _GenNode:
    def convert(node):
        copy = _GenNode(node.tag, node.pos, node.data)
        for child in node.children:
            converted = convert(child)
            converted.parent = copy
            copy.children.append(converted)
        return copy

    return convert(tree.root)
