"""DBLP simulator (XML, 9 target tables).

The real DBLP dump is a ~2 GB XML file of bibliographic records.  The
simulator produces documents with the same shape — a flat sequence of
``article`` / ``inproceedings`` / ``phdthesis`` / ``www`` records, each with
nested metadata and a list of ``author`` elements — and a normalized 9-table
target schema.

DBLP records carry a natural key (the ``key`` element, e.g.
``journals/a12``), so the target schema uses *natural* keys: primary and
foreign keys are values extracted from the document, exactly as the footnote
of Section 6 of the paper assumes for datasets that already contain keys.

Records are generated deterministically from a seed, and the same records
drive both the document and the expected relational tables, so example tables
are consistent with the example document by construction.
"""

from __future__ import annotations

from typing import Dict, List

from ..hdt.tree import HDT, build_tree
from ..migration.engine import TableExampleSpec
from ..relational.schema import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from .base import DatasetBundle, Row, person_name, pick, rng, title_phrase, WORDS

_JOURNALS = ["J. Alpha Systems", "Trans. Data Eng.", "VLDB Journal", "Inf. Systems"]
_CONFERENCES = ["SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR"]
_SCHOOLS = ["UT Austin", "ETH Zurich", "MIT", "TU Munich"]


# --------------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------------- #


def make_records(scale: int, seed: int = 7) -> Dict[str, List[dict]]:
    """Generate synthetic DBLP records.

    ``scale`` roughly controls the number of publications: the document
    contains ``2*scale`` articles, ``2*scale`` inproceedings, ``max(1, scale//2)``
    PhD theses and ``max(1, scale//2)`` www records.
    """
    generator = rng(seed)
    records: Dict[str, List[dict]] = {
        "article": [],
        "inproceedings": [],
        "phdthesis": [],
        "www": [],
    }
    for index in range(2 * scale):
        records["article"].append(
            {
                "key": f"journals/a{index}",
                "title": title_phrase(generator),
                "year": 1995 + generator.randrange(28),
                "journal": pick(generator, _JOURNALS),
                "volume": 1 + generator.randrange(40),
                "authors": [
                    {"name": person_name(generator), "position": p + 1}
                    for p in range(1 + generator.randrange(3))
                ],
            }
        )
    for index in range(2 * scale):
        records["inproceedings"].append(
            {
                "key": f"conf/c{index}",
                "title": title_phrase(generator),
                "year": 1995 + generator.randrange(28),
                "booktitle": pick(generator, _CONFERENCES),
                "pages": f"{100 + index}-{110 + index}",
                "authors": [
                    {"name": person_name(generator), "position": p + 1}
                    for p in range(1 + generator.randrange(3))
                ],
            }
        )
    for index in range(max(1, scale // 2)):
        records["phdthesis"].append(
            {
                "key": f"phd/t{index}",
                "title": title_phrase(generator, 4),
                "year": 2000 + generator.randrange(23),
                "school": pick(generator, _SCHOOLS),
                "authors": [{"name": person_name(generator), "position": 1}],
            }
        )
    for index in range(max(1, scale // 2)):
        records["www"].append(
            {
                "key": f"www/w{index}",
                "title": title_phrase(generator, 2),
                "url": f"https://example.org/{pick(generator, WORDS)}/{index}",
                "editor": person_name(generator),
            }
        )
    return records


def records_to_tree(records: Dict[str, List[dict]]) -> HDT:
    """Materialize records as the DBLP-shaped hierarchical document."""
    spec = {
        "article": [
            {
                "key": r["key"],
                "title": r["title"],
                "year": r["year"],
                "journal": r["journal"],
                "volume": r["volume"],
                "author": [
                    {"name": a["name"], "position": a["position"]} for a in r["authors"]
                ],
            }
            for r in records["article"]
        ],
        "inproceedings": [
            {
                "key": r["key"],
                "title": r["title"],
                "year": r["year"],
                "booktitle": r["booktitle"],
                "pages": r["pages"],
                "author": [
                    {"name": a["name"], "position": a["position"]} for a in r["authors"]
                ],
            }
            for r in records["inproceedings"]
        ],
        "phdthesis": [
            {
                "key": r["key"],
                "title": r["title"],
                "year": r["year"],
                "school": r["school"],
                "author": [
                    {"name": a["name"], "position": a["position"]} for a in r["authors"]
                ],
            }
            for r in records["phdthesis"]
        ],
        "www": [
            {"key": r["key"], "title": r["title"], "url": r["url"], "editor": r["editor"]}
            for r in records["www"]
        ],
    }
    return build_tree(spec, tag="dblp")


# --------------------------------------------------------------------------- #
# Schema
# --------------------------------------------------------------------------- #


def schema() -> DatabaseSchema:
    """The 9-table normalized DBLP target schema (natural keys)."""

    def link_table(name: str, parent: str) -> TableSchema:
        return TableSchema(
            name=name,
            columns=[
                ColumnDef(f"{parent}_key", "text", nullable=False),
                ColumnDef("author_name", "text"),
                ColumnDef("position", "integer"),
            ],
            foreign_keys=[ForeignKey(f"{parent}_key", parent, "key")],
            natural_keys=True,
        )

    return DatabaseSchema(
        name="dblp",
        tables=[
            TableSchema(
                name="journal",
                columns=[ColumnDef("name", "text", nullable=False)],
                primary_key="name",
                natural_keys=True,
            ),
            TableSchema(
                name="article",
                columns=[
                    ColumnDef("key", "text", nullable=False),
                    ColumnDef("title", "text"),
                    ColumnDef("year", "integer"),
                    ColumnDef("journal", "text"),
                    ColumnDef("volume", "integer"),
                ],
                primary_key="key",
                foreign_keys=[ForeignKey("journal", "journal", "name")],
                natural_keys=True,
            ),
            TableSchema(
                name="inproceedings",
                columns=[
                    ColumnDef("key", "text", nullable=False),
                    ColumnDef("title", "text"),
                    ColumnDef("year", "integer"),
                    ColumnDef("booktitle", "text"),
                    ColumnDef("pages", "text"),
                ],
                primary_key="key",
                natural_keys=True,
            ),
            TableSchema(
                name="phdthesis",
                columns=[
                    ColumnDef("key", "text", nullable=False),
                    ColumnDef("title", "text"),
                    ColumnDef("year", "integer"),
                    ColumnDef("school", "text"),
                ],
                primary_key="key",
                natural_keys=True,
            ),
            TableSchema(
                name="www",
                columns=[
                    ColumnDef("key", "text", nullable=False),
                    ColumnDef("title", "text"),
                    ColumnDef("url", "text"),
                    ColumnDef("editor", "text"),
                ],
                primary_key="key",
                natural_keys=True,
            ),
            link_table("article_author", "article"),
            link_table("inproceedings_author", "inproceedings"),
            link_table("phdthesis_author", "phdthesis"),
            TableSchema(
                name="www_editor",
                columns=[
                    ColumnDef("www_key", "text", nullable=False),
                    ColumnDef("editor_name", "text"),
                ],
                foreign_keys=[ForeignKey("www_key", "www", "key")],
                natural_keys=True,
            ),
        ],
    )


# --------------------------------------------------------------------------- #
# Expected tables / examples
# --------------------------------------------------------------------------- #


def records_to_tables(records: Dict[str, List[dict]]) -> Dict[str, List[Row]]:
    """Ground-truth relational content for a set of records."""
    tables: Dict[str, List[Row]] = {
        "journal": [],
        "article": [],
        "inproceedings": [],
        "phdthesis": [],
        "www": [],
        "article_author": [],
        "inproceedings_author": [],
        "phdthesis_author": [],
        "www_editor": [],
    }
    journals: List[str] = []
    for record in records["article"]:
        if record["journal"] not in journals:
            journals.append(record["journal"])
        tables["article"].append(
            (record["key"], record["title"], record["year"], record["journal"], record["volume"])
        )
        for author in record["authors"]:
            tables["article_author"].append((record["key"], author["name"], author["position"]))
    tables["journal"] = [(name,) for name in journals]
    for record in records["inproceedings"]:
        tables["inproceedings"].append(
            (record["key"], record["title"], record["year"], record["booktitle"], record["pages"])
        )
        for author in record["authors"]:
            tables["inproceedings_author"].append(
                (record["key"], author["name"], author["position"])
            )
    for record in records["phdthesis"]:
        tables["phdthesis"].append(
            (record["key"], record["title"], record["year"], record["school"])
        )
        for author in record["authors"]:
            tables["phdthesis_author"].append((record["key"], author["name"], author["position"]))
    for record in records["www"]:
        tables["www"].append((record["key"], record["title"], record["url"], record["editor"]))
        tables["www_editor"].append((record["key"], record["editor"]))
    return tables


def ground_truth_counts(scale: int, seed: int = 7) -> Dict[str, int]:
    """Expected row counts per table for a generated document."""
    tables = records_to_tables(make_records(scale, seed))
    return {name: len(rows) for name, rows in tables.items()}


# --------------------------------------------------------------------------- #
# Bundle
# --------------------------------------------------------------------------- #

_EXAMPLE_SEED = 101


def _example_records() -> Dict[str, List[dict]]:
    """A small, hand-sized example document (a few records per kind)."""
    generator = rng(_EXAMPLE_SEED)
    records = make_records(4, _EXAMPLE_SEED)
    records["article"] = records["article"][:2]
    records["inproceedings"] = records["inproceedings"][:2]
    records["phdthesis"] = records["phdthesis"][:2]
    records["www"] = records["www"][:2]
    # Distinct journals in the example keep the journal table's rows unique.
    records["article"][0]["journal"] = "VLDB Journal"
    records["article"][1]["journal"] = "Trans. Data Eng."
    # Representative author lists: varying lengths (so that "first author only"
    # programs are inconsistent with the example) and unique names (so that
    # example rows can be matched unambiguously).
    names = iter(
        ["Ada Chen", "Brian Okafor", "Carla Rossi", "Dmitri Ivanov", "Elena Sato",
         "Farid Haddad", "Grace Kim", "Hiro Nakamura", "Ines Weber", "Jonas Petrov"]
    )
    records["article"][0]["authors"] = [
        {"name": next(names), "position": 1},
        {"name": next(names), "position": 2},
    ]
    records["article"][1]["authors"] = [{"name": next(names), "position": 1}]
    records["inproceedings"][0]["authors"] = [
        {"name": next(names), "position": 1},
        {"name": next(names), "position": 2},
        {"name": next(names), "position": 3},
    ]
    records["inproceedings"][1]["authors"] = [{"name": next(names), "position": 1}]
    records["phdthesis"][0]["authors"] = [{"name": next(names), "position": 1}]
    records["phdthesis"][1]["authors"] = [{"name": next(names), "position": 1}]
    return records


def dataset(scale: int = 20, seed: int = 7) -> DatasetBundle:
    """The DBLP dataset bundle used by examples, tests and benchmarks."""
    example_records = _example_records()
    example_tables = records_to_tables(example_records)
    return DatasetBundle(
        name="DBLP",
        format="xml",
        schema=schema(),
        example_tree=records_to_tree(example_records),
        table_examples=[
            TableExampleSpec(table=name, rows=rows) for name, rows in example_tables.items()
        ],
        generate=lambda s=scale: records_to_tree(make_records(s, seed)),
        ground_truth=lambda s=scale: ground_truth_counts(s, seed),
        description="Synthetic bibliography shaped like the DBLP XML dump.",
    )
