"""YELP simulator (JSON, 7 target tables).

The real YELP academic dataset is ~4.6 GB of JSON records (businesses, users,
reviews, tips, check-ins).  The simulator produces a document with top-level
``businesses``, ``users``, ``reviews`` and ``tips`` collections — businesses
nest their categories, opening hours and check-ins — and the normalized
7-table target schema.  YELP records carry natural identifiers
(``business_id``, ``user_id``, ``review_id``), so the schema uses natural keys.
"""

from __future__ import annotations

from typing import Dict, List

from ..hdt.tree import HDT
from ..hdt.json_plugin import json_to_hdt
from ..migration.engine import TableExampleSpec
from ..relational.schema import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from .base import DatasetBundle, Row, person_name, pick, rng, title_phrase

_CITIES = [("Austin", "TX"), ("Portland", "OR"), ("Madison", "WI"), ("Tucson", "AZ")]
_CATEGORIES = ["Coffee", "Bakery", "Ramen", "Books", "Records", "Tacos", "Climbing", "Barber"]
_DAYS = ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"]
_TIP_TEXTS = [
    "great espresso", "try the weekend special", "gets busy after noon",
    "plenty of seating", "cash only", "ask for the off-menu item",
]


def make_records(scale: int, seed: int = 13) -> Dict[str, List[dict]]:
    """Generate synthetic YELP records (``2*scale`` businesses, ``3*scale`` users)."""
    generator = rng(seed)
    users = [
        {
            "user_id": f"u{i:05d}",
            "name": person_name(generator),
            "since": 2008 + generator.randrange(15),
        }
        for i in range(3 * scale)
    ]
    businesses = []
    reviews = []
    tips = []
    review_counter = 0
    for index in range(2 * scale):
        city, state = pick(generator, _CITIES)
        business_id = f"b{index:05d}"
        businesses.append(
            {
                "business_id": business_id,
                "name": f"{title_phrase(generator, 2)} {pick(generator, _CATEGORIES)}",
                "city": city,
                "state": state,
                "stars": round(2.5 + generator.random() * 2.5, 1),
                "categories": sorted({pick(generator, _CATEGORIES) for _ in range(1 + generator.randrange(2))}),
                "hours": [
                    {"day": _DAYS[d], "open": "08:00", "close": "18:00"}
                    for d in range(1 + generator.randrange(3))
                ],
                "checkins": [
                    {"day": _DAYS[d], "count": 1 + generator.randrange(40)}
                    for d in range(1 + generator.randrange(3))
                ],
            }
        )
        for _ in range(1 + generator.randrange(3)):
            reviews.append(
                {
                    "review_id": f"r{review_counter:06d}",
                    "business_id": business_id,
                    "user_id": pick(generator, users)["user_id"],
                    "stars": 1 + generator.randrange(5),
                    "date": f"20{10 + generator.randrange(14)}-0{1 + generator.randrange(9)}-1{generator.randrange(9)}",
                }
            )
            review_counter += 1
        if generator.random() < 0.7:
            tips.append(
                {
                    "business_id": business_id,
                    "user_id": pick(generator, users)["user_id"],
                    "text": pick(generator, _TIP_TEXTS),
                    "date": f"20{10 + generator.randrange(14)}-0{1 + generator.randrange(9)}-2{generator.randrange(9)}",
                }
            )
    return {"businesses": businesses, "users": users, "reviews": reviews, "tips": tips}


def records_to_tree(records: Dict[str, List[dict]]) -> HDT:
    """Materialize records as the YELP-shaped JSON document."""
    return json_to_hdt(
        {
            "businesses": records["businesses"],
            "users": records["users"],
            "reviews": records["reviews"],
            "tips": records["tips"],
        }
    )


def schema() -> DatabaseSchema:
    """The 7-table normalized YELP target schema (natural keys)."""
    return DatabaseSchema(
        name="yelp",
        tables=[
            TableSchema(
                "business",
                [
                    ColumnDef("business_id", "text", nullable=False),
                    ColumnDef("name", "text"),
                    ColumnDef("city", "text"),
                    ColumnDef("state", "text"),
                    ColumnDef("stars", "real"),
                ],
                primary_key="business_id",
                natural_keys=True,
            ),
            TableSchema(
                "category",
                [ColumnDef("business_id", "text", nullable=False), ColumnDef("name", "text")],
                foreign_keys=[ForeignKey("business_id", "business", "business_id")],
                natural_keys=True,
            ),
            TableSchema(
                "hours",
                [
                    ColumnDef("business_id", "text", nullable=False),
                    ColumnDef("day", "text"),
                    ColumnDef("open", "text"),
                    ColumnDef("close", "text"),
                ],
                foreign_keys=[ForeignKey("business_id", "business", "business_id")],
                natural_keys=True,
            ),
            TableSchema(
                "user",
                [
                    ColumnDef("user_id", "text", nullable=False),
                    ColumnDef("name", "text"),
                    ColumnDef("since", "integer"),
                ],
                primary_key="user_id",
                natural_keys=True,
            ),
            TableSchema(
                "review",
                [
                    ColumnDef("review_id", "text", nullable=False),
                    ColumnDef("business_id", "text"),
                    ColumnDef("user_id", "text"),
                    ColumnDef("stars", "integer"),
                    ColumnDef("date", "text"),
                ],
                primary_key="review_id",
                foreign_keys=[
                    ForeignKey("business_id", "business", "business_id"),
                    ForeignKey("user_id", "user", "user_id"),
                ],
                natural_keys=True,
            ),
            TableSchema(
                "tip",
                [
                    ColumnDef("business_id", "text", nullable=False),
                    ColumnDef("user_id", "text"),
                    ColumnDef("text", "text"),
                    ColumnDef("date", "text"),
                ],
                foreign_keys=[
                    ForeignKey("business_id", "business", "business_id"),
                    ForeignKey("user_id", "user", "user_id"),
                ],
                natural_keys=True,
            ),
            TableSchema(
                "checkin",
                [
                    ColumnDef("business_id", "text", nullable=False),
                    ColumnDef("day", "text"),
                    ColumnDef("count", "integer"),
                ],
                foreign_keys=[ForeignKey("business_id", "business", "business_id")],
                natural_keys=True,
            ),
        ],
    )


def records_to_tables(records: Dict[str, List[dict]]) -> Dict[str, List[Row]]:
    """Ground-truth relational content for a set of records."""
    tables: Dict[str, List[Row]] = {
        "business": [],
        "category": [],
        "hours": [],
        "user": [(u["user_id"], u["name"], u["since"]) for u in records["users"]],
        "review": [
            (r["review_id"], r["business_id"], r["user_id"], r["stars"], r["date"])
            for r in records["reviews"]
        ],
        "tip": [
            (t["business_id"], t["user_id"], t["text"], t["date"]) for t in records["tips"]
        ],
        "checkin": [],
    }
    for business in records["businesses"]:
        tables["business"].append(
            (
                business["business_id"],
                business["name"],
                business["city"],
                business["state"],
                business["stars"],
            )
        )
        for category in business["categories"]:
            tables["category"].append((business["business_id"], category))
        for entry in business["hours"]:
            tables["hours"].append(
                (business["business_id"], entry["day"], entry["open"], entry["close"])
            )
        for entry in business["checkins"]:
            tables["checkin"].append((business["business_id"], entry["day"], entry["count"]))
    return tables


def ground_truth_counts(scale: int, seed: int = 13) -> Dict[str, int]:
    """Expected *distinct* row counts per table for a generated document."""
    tables = records_to_tables(make_records(scale, seed))
    return {name: len(set(rows)) for name, rows in tables.items()}


def _example_records() -> Dict[str, List[dict]]:
    """A small example with two businesses, three users, a few reviews/tips."""
    users = [
        {"user_id": "u00001", "name": "Ada Chen", "since": 2011},
        {"user_id": "u00002", "name": "Brian Okafor", "since": 2015},
        {"user_id": "u00003", "name": "Carla Rossi", "since": 2009},
    ]
    businesses = [
        {
            "business_id": "b00001",
            "name": "Cedar Harbor Coffee",
            "city": "Austin",
            "state": "TX",
            "stars": 4.5,
            "categories": ["Coffee", "Bakery"],
            "hours": [
                {"day": "Monday", "open": "07:00", "close": "17:00"},
                {"day": "Tuesday", "open": "07:30", "close": "18:00"},
            ],
            "checkins": [{"day": "Friday", "count": 12}, {"day": "Sunday", "count": 31}],
        },
        {
            "business_id": "b00002",
            "name": "Quartz Meadow Records",
            "city": "Portland",
            "state": "OR",
            "stars": 3.5,
            "categories": ["Records"],
            "hours": [
                {"day": "Monday", "open": "09:00", "close": "21:00"},
                {"day": "Saturday", "open": "10:00", "close": "20:00"},
            ],
            "checkins": [{"day": "Friday", "count": 7}, {"day": "Wednesday", "count": 3}],
        },
    ]
    reviews = [
        {"review_id": "r000001", "business_id": "b00001", "user_id": "u00001", "stars": 5, "date": "2019-03-12"},
        {"review_id": "r000002", "business_id": "b00001", "user_id": "u00002", "stars": 4, "date": "2020-07-01"},
        {"review_id": "r000003", "business_id": "b00002", "user_id": "u00003", "stars": 2, "date": "2021-11-23"},
    ]
    tips = [
        {"business_id": "b00001", "user_id": "u00003", "text": "great espresso", "date": "2018-05-02"},
        {"business_id": "b00002", "user_id": "u00001", "text": "cash only", "date": "2022-01-15"},
    ]
    return {"businesses": businesses, "users": users, "reviews": reviews, "tips": tips}


def dataset(scale: int = 15, seed: int = 13) -> DatasetBundle:
    """The YELP dataset bundle used by examples, tests and benchmarks."""
    example_records = _example_records()
    example_tables = records_to_tables(example_records)
    return DatasetBundle(
        name="YELP",
        format="json",
        schema=schema(),
        example_tree=records_to_tree(example_records),
        table_examples=[
            TableExampleSpec(table=name, rows=rows) for name, rows in example_tables.items()
        ],
        generate=lambda s=scale: records_to_tree(make_records(s, seed)),
        ground_truth=lambda s=scale: ground_truth_counts(s, seed),
        description="Synthetic local-business data shaped like the YELP JSON dataset.",
    )
