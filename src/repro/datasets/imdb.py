"""IMDB simulator (JSON, 9 target tables).

The real IMDB dataset used by the paper is ~6 GB of JSON converted from the
IMDb TSV dumps.  The simulator produces JSON-shaped documents with top-level
``movies``, ``series``, ``people`` and ``studios`` collections and the
normalized 9-table schema of the Table 2 experiment.  IMDb records carry
natural identifiers (``tt.../nm...``-style ids), so the schema uses natural
keys throughout.
"""

from __future__ import annotations

from typing import Dict, List

from ..hdt.tree import HDT
from ..hdt.json_plugin import json_to_hdt
from ..migration.engine import TableExampleSpec
from ..relational.schema import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from .base import DatasetBundle, Row, person_name, pick, rng, title_phrase

_GENRES = ["Drama", "Comedy", "Thriller", "Sci-Fi", "Documentary", "Action"]
_STUDIOS = [
    {"name": "Meridian Pictures", "city": "Los Angeles"},
    {"name": "Northlight Films", "city": "Vancouver"},
    {"name": "Harbor Street Studio", "city": "London"},
    {"name": "Quartz Media", "city": "Berlin"},
]
_CHARACTERS = ["the detective", "the pilot", "the archivist", "the stranger",
               "the engineer", "the narrator", "the captain", "the analyst"]


def make_records(scale: int, seed: int = 11) -> Dict[str, List[dict]]:
    """Generate synthetic IMDB records (roughly ``3*scale`` movies, ``scale`` series)."""
    generator = rng(seed)
    people = [
        {"id": f"nm{i:05d}", "name": person_name(generator), "birth_year": 1940 + generator.randrange(60)}
        for i in range(4 * scale + 6)
    ]
    movies = []
    for index in range(3 * scale):
        cast_size = 1 + generator.randrange(3)
        director_count = 1 + generator.randrange(2)
        movies.append(
            {
                "id": f"tt{index:06d}",
                "title": title_phrase(generator),
                "year": 1980 + generator.randrange(44),
                "studio": pick(generator, _STUDIOS)["name"],
                "genres": sorted({pick(generator, _GENRES) for _ in range(1 + generator.randrange(2))}),
                "rating": {
                    "score": round(4 + generator.random() * 6, 1),
                    "votes": 100 + generator.randrange(100000),
                },
                "cast": [
                    {"person": pick(generator, people)["id"], "character": pick(generator, _CHARACTERS)}
                    for _ in range(cast_size)
                ],
                "directors": [
                    {"person": pick(generator, people)["id"], "order": d + 1}
                    for d in range(director_count)
                ],
            }
        )
    series = []
    for index in range(max(1, scale)):
        episode_count = 2 + generator.randrange(3)
        series.append(
            {
                "id": f"sr{index:05d}",
                "title": title_phrase(generator, 2),
                "start_year": 1995 + generator.randrange(25),
                "end_year": 2000 + generator.randrange(24),
                "episodes": [
                    {
                        "id": f"ep{index:04d}x{e}",
                        "title": title_phrase(generator, 2),
                        "season": 1 + e // 3,
                        "number": e + 1,
                    }
                    for e in range(episode_count)
                ],
            }
        )
    return {"movies": movies, "series": series, "people": people, "studios": list(_STUDIOS)}


def records_to_tree(records: Dict[str, List[dict]]) -> HDT:
    """Materialize records as the IMDB-shaped JSON document.

    Identifier fields use distinct key names per entity kind (``movie_id``,
    ``series_id``, ``person_id``, ``episode_id``), mirroring IMDb's
    tconst/nconst/parentTconst naming.
    """
    return json_to_hdt(
        {
            "movies": [
                {
                    "movie_id": m["id"],
                    "title": m["title"],
                    "year": m["year"],
                    "studio": m["studio"],
                    "genres": m["genres"],
                    "rating": m["rating"],
                    "cast": m["cast"],
                    "directors": [
                        {"director": d["person"], "order": d["order"]} for d in m["directors"]
                    ],
                }
                for m in records["movies"]
            ],
            "series": [
                {
                    "series_id": s["id"],
                    "title": s["title"],
                    "start_year": s["start_year"],
                    "end_year": s["end_year"],
                    "episodes": [
                        {
                            "episode_id": e["id"],
                            "title": e["title"],
                            "season": e["season"],
                            "number": e["number"],
                        }
                        for e in s["episodes"]
                    ],
                }
                for s in records["series"]
            ],
            "people": [
                {"person_id": p["id"], "name": p["name"], "birth_year": p["birth_year"]}
                for p in records["people"]
            ],
            "studios": records["studios"],
        }
    )


def schema() -> DatabaseSchema:
    """The 9-table normalized IMDB target schema (natural keys)."""
    return DatabaseSchema(
        name="imdb",
        tables=[
            TableSchema(
                "studio",
                [ColumnDef("name", "text", nullable=False), ColumnDef("city", "text")],
                primary_key="name",
                natural_keys=True,
            ),
            TableSchema(
                "person",
                [
                    ColumnDef("person_id", "text", nullable=False),
                    ColumnDef("name", "text"),
                    ColumnDef("birth_year", "integer"),
                ],
                primary_key="person_id",
                natural_keys=True,
            ),
            TableSchema(
                "movie",
                [
                    ColumnDef("movie_id", "text", nullable=False),
                    ColumnDef("title", "text"),
                    ColumnDef("year", "integer"),
                    ColumnDef("studio", "text"),
                ],
                primary_key="movie_id",
                foreign_keys=[ForeignKey("studio", "studio", "name")],
                natural_keys=True,
            ),
            TableSchema(
                "series",
                [
                    ColumnDef("series_id", "text", nullable=False),
                    ColumnDef("title", "text"),
                    ColumnDef("start_year", "integer"),
                    ColumnDef("end_year", "integer"),
                ],
                primary_key="series_id",
                natural_keys=True,
            ),
            TableSchema(
                "episode",
                [
                    ColumnDef("episode_id", "text", nullable=False),
                    ColumnDef("series_id", "text"),
                    ColumnDef("title", "text"),
                    ColumnDef("season", "integer"),
                    ColumnDef("number", "integer"),
                ],
                primary_key="episode_id",
                foreign_keys=[ForeignKey("series_id", "series", "series_id")],
                natural_keys=True,
            ),
            TableSchema(
                "movie_cast",
                [
                    ColumnDef("movie_id", "text", nullable=False),
                    ColumnDef("person_id", "text"),
                    ColumnDef("character", "text"),
                ],
                foreign_keys=[
                    ForeignKey("movie_id", "movie", "movie_id"),
                    ForeignKey("person_id", "person", "person_id"),
                ],
                natural_keys=True,
            ),
            TableSchema(
                "movie_director",
                [
                    ColumnDef("movie_id", "text", nullable=False),
                    ColumnDef("person_id", "text"),
                    ColumnDef("credit_order", "integer"),
                ],
                foreign_keys=[
                    ForeignKey("movie_id", "movie", "movie_id"),
                    ForeignKey("person_id", "person", "person_id"),
                ],
                natural_keys=True,
            ),
            TableSchema(
                "rating",
                [
                    ColumnDef("movie_id", "text", nullable=False),
                    ColumnDef("score", "real"),
                    ColumnDef("votes", "integer"),
                ],
                foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
                natural_keys=True,
            ),
            TableSchema(
                "genre",
                [
                    ColumnDef("movie_id", "text", nullable=False),
                    ColumnDef("name", "text"),
                ],
                foreign_keys=[ForeignKey("movie_id", "movie", "movie_id")],
                natural_keys=True,
            ),
        ],
    )


def records_to_tables(records: Dict[str, List[dict]]) -> Dict[str, List[Row]]:
    """Ground-truth relational content for a set of records."""
    tables: Dict[str, List[Row]] = {
        "studio": [(s["name"], s["city"]) for s in records["studios"]],
        "person": [(p["id"], p["name"], p["birth_year"]) for p in records["people"]],
        "movie": [],
        "series": [],
        "episode": [],
        "movie_cast": [],
        "movie_director": [],
        "rating": [],
        "genre": [],
    }
    for movie in records["movies"]:
        tables["movie"].append((movie["id"], movie["title"], movie["year"], movie["studio"]))
        tables["rating"].append((movie["id"], movie["rating"]["score"], movie["rating"]["votes"]))
        for genre in movie["genres"]:
            tables["genre"].append((movie["id"], genre))
        for member in movie["cast"]:
            tables["movie_cast"].append((movie["id"], member["person"], member["character"]))
        for director in movie["directors"]:
            tables["movie_director"].append((movie["id"], director["person"], director["order"]))
    for show in records["series"]:
        tables["series"].append((show["id"], show["title"], show["start_year"], show["end_year"]))
        for episode in show["episodes"]:
            tables["episode"].append(
                (episode["id"], show["id"], episode["title"], episode["season"], episode["number"])
            )
    return tables


def ground_truth_counts(scale: int, seed: int = 11) -> Dict[str, int]:
    """Expected *distinct* row counts per table for a generated document."""
    tables = records_to_tables(make_records(scale, seed))
    return {name: len(set(rows)) for name, rows in tables.items()}


_EXAMPLE_SEED = 202


def _example_records() -> Dict[str, List[dict]]:
    """A small example with two movies, two series, a handful of people."""
    people = [
        {"id": "nm00001", "name": "Ada Chen", "birth_year": 1961},
        {"id": "nm00002", "name": "Brian Okafor", "birth_year": 1975},
        {"id": "nm00003", "name": "Carla Rossi", "birth_year": 1983},
        {"id": "nm00004", "name": "Dmitri Ivanov", "birth_year": 1958},
    ]
    movies = [
        {
            "id": "tt000001",
            "title": "Harbor Of Glass",
            "year": 1999,
            "studio": "Meridian Pictures",
            "genres": ["Drama", "Thriller"],
            "rating": {"score": 7.4, "votes": 1843},
            "cast": [
                {"person": "nm00001", "character": "the detective"},
                {"person": "nm00002", "character": "the pilot"},
            ],
            "directors": [{"person": "nm00004", "order": 1}],
        },
        {
            "id": "tt000002",
            "title": "Quartz Meadow",
            "year": 2011,
            "studio": "Northlight Films",
            "genres": ["Comedy", "Drama"],
            "rating": {"score": 6.1, "votes": 422},
            "cast": [
                {"person": "nm00003", "character": "the archivist"},
                {"person": "nm00002", "character": "the stranger"},
            ],
            "directors": [
                {"person": "nm00001", "order": 1},
                {"person": "nm00002", "order": 2},
            ],
        },
    ]
    series = [
        {
            "id": "sr00001",
            "title": "Cedar Station",
            "start_year": 2005,
            "end_year": 2009,
            "episodes": [
                {"id": "ep0001x0", "title": "Arrival", "season": 1, "number": 1},
                {"id": "ep0001x1", "title": "Signals", "season": 1, "number": 2},
            ],
        },
        {
            "id": "sr00002",
            "title": "Tundra Lines",
            "start_year": 2014,
            "end_year": 2016,
            "episodes": [{"id": "ep0002x0", "title": "North", "season": 1, "number": 1}],
        },
    ]
    studios = [
        {"name": "Meridian Pictures", "city": "Los Angeles"},
        {"name": "Northlight Films", "city": "Vancouver"},
    ]
    return {"movies": movies, "series": series, "people": people, "studios": studios}


def dataset(scale: int = 15, seed: int = 11) -> DatasetBundle:
    """The IMDB dataset bundle used by examples, tests and benchmarks."""
    example_records = _example_records()
    example_tables = records_to_tables(example_records)
    return DatasetBundle(
        name="IMDB",
        format="json",
        schema=schema(),
        example_tree=records_to_tree(example_records),
        table_examples=[
            TableExampleSpec(table=name, rows=rows) for name, rows in example_tables.items()
        ],
        generate=lambda s=scale: records_to_tree(make_records(s, seed)),
        ground_truth=lambda s=scale: ground_truth_counts(s, seed),
        description="Synthetic movie catalogue shaped like the IMDB JSON export.",
    )
