"""MONDIAL simulator (XML, 25 target tables).

The real MONDIAL database is a 3.6 MB XML document of geographical facts.  The
simulator produces a document whose countries nest provinces, cities,
geographic features, demographic breakdowns and economic indicators, plus
top-level continents and international organizations; the target schema has
the same 25-table count as the paper's experiment.  Natural keys (country
codes, feature names, organization abbreviations) are used throughout.

The tables deliberately fall into a handful of repeated shapes (per-country
attribute tables, per-country feature tables, nested coordinate tables), which
mirrors the real MONDIAL schema's regularity and keeps the per-table examples
uniform.
"""

from __future__ import annotations

from typing import Dict, List

from ..hdt.tree import HDT, build_tree
from ..migration.engine import TableExampleSpec
from ..relational.schema import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from .base import DatasetBundle, Row, pick, rng

_CONTINENTS = [
    {"name": "Europe", "area": 10_180_000},
    {"name": "Asia", "area": 44_579_000},
    {"name": "America", "area": 42_549_000},
    {"name": "Africa", "area": 30_370_000},
    {"name": "Oceania", "area": 8_526_000},
]
_LANGUAGES = ["Arvanic", "Belsian", "Corvish", "Dantean", "Ersian", "Fjellic"]
_RELIGIONS = ["Solarian", "Lunarian", "Tidal", "Veridian"]
_ETHNIC = ["Arvan", "Belsan", "Corv", "Dante", "Ers", "Fjell"]
_CLIMATES = ["temperate", "arid", "tropical", "continental", "alpine"]
_ORGS = [
    {"abbrev": "UN-X", "name": "Union of Nations", "established": 1946},
    {"abbrev": "TRC", "name": "Trade and Resource Council", "established": 1971},
    {"abbrev": "GSA", "name": "Geographic Survey Alliance", "established": 1989},
]


def make_records(scale: int, seed: int = 17) -> Dict[str, List[dict]]:
    """Generate synthetic MONDIAL records (``scale`` countries)."""
    generator = rng(seed)
    countries: List[dict] = []
    for index in range(max(2, scale)):
        code = f"C{index:03d}"
        name = f"Country {code}"
        provinces = []
        for p in range(1 + generator.randrange(3)):
            cities = []
            for c in range(1 + generator.randrange(3)):
                cities.append(
                    {
                        "name": f"{name} City {p}-{c}",
                        "population": 10_000 + generator.randrange(5_000_000),
                        "history": [
                            {"year": 1990 + 10 * h, "value": 8_000 + generator.randrange(4_000_000)}
                            for h in range(1 + generator.randrange(2))
                        ],
                        "airports": (
                            [{"name": f"{name} Airport {p}-{c}", "iata": f"A{index:02d}{p}{c}"}]
                            if generator.random() < 0.5
                            else []
                        ),
                    }
                )
            provinces.append(
                {
                    "name": f"{name} Province {p}",
                    "area": 1_000 + generator.randrange(200_000),
                    "cities": cities,
                }
            )
        country = {
            "code": code,
            "name": name,
            "capital": provinces[0]["cities"][0]["name"],
            "area": 10_000 + generator.randrange(2_000_000),
            "population": 500_000 + generator.randrange(90_000_000),
            "provinces": provinces,
            "languages": [
                {"name": lang, "percentage": round(5 + generator.random() * 60, 1)}
                for lang in sorted({pick(generator, _LANGUAGES) for _ in range(2)})
            ],
            "religions": [
                {"name": rel, "percentage": round(5 + generator.random() * 70, 1)}
                for rel in sorted({pick(generator, _RELIGIONS) for _ in range(2)})
            ],
            "ethnicgroups": [
                {"name": eth, "percentage": round(5 + generator.random() * 80, 1)}
                for eth in sorted({pick(generator, _ETHNIC) for _ in range(2)})
            ],
            "borders": [
                {"neighbor": f"C{(index + d) % max(2, scale):03d}", "length": 50 + generator.randrange(2_000)}
                for d in range(1, 1 + generator.randrange(2) + 1)
            ],
            "economy": {
                "gdp": 1_000 + generator.randrange(3_000_000),
                "inflation": round(generator.random() * 12, 2),
                "industry": round(10 + generator.random() * 60, 1),
            },
            "histpop": [
                {"year": 1980 + 10 * h, "value": 400_000 + generator.randrange(80_000_000)}
                for h in range(2)
            ],
            "lakes": [
                {"name": f"Lake {code}-{i}", "area": 10 + generator.randrange(30_000)}
                for i in range(generator.randrange(2))
            ],
            "rivers": [
                {
                    "name": f"River {code}-{i}",
                    "length": 100 + generator.randrange(5_000),
                    "source": {"longitude": round(generator.random() * 180, 2), "latitude": round(generator.random() * 90, 2)},
                    "estuary": {"longitude": round(generator.random() * 180, 2), "latitude": round(generator.random() * 90, 2)},
                }
                for i in range(generator.randrange(2))
            ],
            "mountains": [
                {"name": f"Mount {code}-{i}", "elevation": 500 + generator.randrange(8_000)}
                for i in range(generator.randrange(2))
            ],
            "deserts": [
                {"name": f"Desert {code}-{i}", "area": 100 + generator.randrange(900_000)}
                for i in range(generator.randrange(2))
            ],
            "islands": [
                {"name": f"Island {code}-{i}", "area": 5 + generator.randrange(100_000)}
                for i in range(generator.randrange(2))
            ],
            "seas": [
                {"name": f"Sea {code}-{i}", "depth": 100 + generator.randrange(10_000)}
                for i in range(generator.randrange(2))
            ],
            "encompassed": [
                {"continent": pick(generator, _CONTINENTS)["name"], "percentage": 100.0}
            ],
            "coasts": [],  # filled in below once the seas list is known
            "climate": {"type": pick(generator, _CLIMATES), "rainfall": 100 + generator.randrange(3_000)},
        }
        # Coasts reference a sea that actually exists in the same country so
        # that every ground-truth row is derivable from the document.
        if country["seas"]:
            country["coasts"] = [
                {"sea_name": country["seas"][0]["name"], "length": 20 + generator.randrange(5_000)}
            ]
        countries.append(country)
    organizations = [
        {
            "abbrev": org["abbrev"],
            "name": org["name"],
            "established": org["established"],
            "members": [
                {"country": c["code"], "type": "member" if i % 2 == 0 else "observer"}
                for i, c in enumerate(countries)
                if (org_index + i) % 3 != 0
            ],
        }
        for org_index, org in enumerate(_ORGS)
    ]
    return {"continents": list(_CONTINENTS), "countries": countries, "organizations": organizations}


def records_to_tree(records: Dict[str, List[dict]]) -> HDT:
    """Materialize records as the MONDIAL-shaped XML document."""
    spec = {
        "continent": [{"name": c["name"], "area": c["area"]} for c in records["continents"]],
        "country": [
            {
                "code": c["code"],
                "name": c["name"],
                "capital": c["capital"],
                "area": c["area"],
                "population": c["population"],
                "province": [
                    {
                        "name": p["name"],
                        "area": p["area"],
                        "city": [
                            {
                                "name": city["name"],
                                "population": city["population"],
                                "citypop": [
                                    {"year": h["year"], "value": h["value"]} for h in city["history"]
                                ],
                                "airport": [
                                    {"name": a["name"], "iata": a["iata"]} for a in city["airports"]
                                ],
                            }
                            for city in p["cities"]
                        ],
                    }
                    for p in c["provinces"]
                ],
                "language": c["languages"],
                "religion": c["religions"],
                "ethnicgroup": c["ethnicgroups"],
                "border": c["borders"],
                "economy": {
                    "gdp": c["economy"]["gdp"],
                    "inflation": c["economy"]["inflation"],
                    "industry": c["economy"]["industry"],
                },
                "histpop": c["histpop"],
                "lake": c["lakes"],
                "river": [
                    {
                        "name": r["name"],
                        "length": r["length"],
                        "source": r["source"],
                        "estuary": r["estuary"],
                    }
                    for r in c["rivers"]
                ],
                "mountain": c["mountains"],
                "desert": c["deserts"],
                "island": c["islands"],
                "sea": c["seas"],
                "encompassed": c["encompassed"],
                "coast": c["coasts"],
                "climate": c["climate"],
            }
            for c in records["countries"]
        ],
        "organization": [
            {
                "abbrev": o["abbrev"],
                "name": o["name"],
                "established": o["established"],
                "member": o["members"],
            }
            for o in records["organizations"]
        ],
    }
    return build_tree(spec, tag="mondial")


def _country_attribute_table(name: str, value_column: ColumnDef) -> TableSchema:
    """A (country_code, name, <value>) table — the recurring MONDIAL shape."""
    return TableSchema(
        name,
        [
            ColumnDef("country_code", "text", nullable=False),
            ColumnDef("name", "text"),
            value_column,
        ],
        foreign_keys=[ForeignKey("country_code", "country", "code")],
        natural_keys=True,
    )


def schema() -> DatabaseSchema:
    """The 25-table MONDIAL target schema (natural keys)."""
    tables: List[TableSchema] = [
        TableSchema(
            "continent",
            [ColumnDef("name", "text", nullable=False), ColumnDef("area", "integer")],
            primary_key="name",
            natural_keys=True,
        ),
        TableSchema(
            "country",
            [
                ColumnDef("code", "text", nullable=False),
                ColumnDef("name", "text"),
                ColumnDef("capital", "text"),
                ColumnDef("area", "integer"),
                ColumnDef("population", "integer"),
            ],
            primary_key="code",
            natural_keys=True,
        ),
        TableSchema(
            "province",
            [
                ColumnDef("name", "text", nullable=False),
                ColumnDef("country_code", "text"),
                ColumnDef("area", "integer"),
            ],
            primary_key="name",
            foreign_keys=[ForeignKey("country_code", "country", "code")],
            natural_keys=True,
        ),
        TableSchema(
            "city",
            [
                ColumnDef("name", "text", nullable=False),
                ColumnDef("province", "text"),
                ColumnDef("population", "integer"),
            ],
            primary_key="name",
            foreign_keys=[ForeignKey("province", "province", "name")],
            natural_keys=True,
        ),
        TableSchema(
            "city_population",
            [
                ColumnDef("city", "text", nullable=False),
                ColumnDef("year", "integer"),
                ColumnDef("value", "integer"),
            ],
            foreign_keys=[ForeignKey("city", "city", "name")],
            natural_keys=True,
        ),
        TableSchema(
            "airport",
            [
                ColumnDef("name", "text", nullable=False),
                ColumnDef("city", "text"),
                ColumnDef("iata", "text"),
            ],
            primary_key="name",
            foreign_keys=[ForeignKey("city", "city", "name")],
            natural_keys=True,
        ),
        _country_attribute_table("language", ColumnDef("percentage", "real")),
        _country_attribute_table("religion", ColumnDef("percentage", "real")),
        _country_attribute_table("ethnicgroup", ColumnDef("percentage", "real")),
        TableSchema(
            "border",
            [
                ColumnDef("country_code", "text", nullable=False),
                ColumnDef("neighbor", "text"),
                ColumnDef("length", "integer"),
            ],
            foreign_keys=[ForeignKey("country_code", "country", "code")],
            natural_keys=True,
        ),
        TableSchema(
            "economy",
            [
                ColumnDef("country_code", "text", nullable=False),
                ColumnDef("gdp", "integer"),
                ColumnDef("inflation", "real"),
                ColumnDef("industry", "real"),
            ],
            foreign_keys=[ForeignKey("country_code", "country", "code")],
            natural_keys=True,
        ),
        TableSchema(
            "country_population",
            [
                ColumnDef("country_code", "text", nullable=False),
                ColumnDef("year", "integer"),
                ColumnDef("value", "integer"),
            ],
            foreign_keys=[ForeignKey("country_code", "country", "code")],
            natural_keys=True,
        ),
        _country_attribute_table("lake", ColumnDef("area", "integer")),
        _country_attribute_table("river", ColumnDef("length", "integer")),
        _country_attribute_table("mountain", ColumnDef("elevation", "integer")),
        _country_attribute_table("desert", ColumnDef("area", "integer")),
        _country_attribute_table("island", ColumnDef("area", "integer")),
        _country_attribute_table("sea", ColumnDef("depth", "integer")),
        TableSchema(
            "river_source",
            [
                ColumnDef("river", "text", nullable=False),
                ColumnDef("longitude", "real"),
                ColumnDef("latitude", "real"),
            ],
            foreign_keys=[ForeignKey("river", "river", "name")],
            natural_keys=True,
        ),
        TableSchema(
            "river_estuary",
            [
                ColumnDef("river", "text", nullable=False),
                ColumnDef("longitude", "real"),
                ColumnDef("latitude", "real"),
            ],
            foreign_keys=[ForeignKey("river", "river", "name")],
            natural_keys=True,
        ),
        TableSchema(
            "encompasses",
            [
                ColumnDef("country_code", "text", nullable=False),
                ColumnDef("continent", "text"),
                ColumnDef("percentage", "real"),
            ],
            foreign_keys=[
                ForeignKey("country_code", "country", "code"),
                ForeignKey("continent", "continent", "name"),
            ],
            natural_keys=True,
        ),
        TableSchema(
            "coast",
            [
                ColumnDef("country_code", "text", nullable=False),
                ColumnDef("sea_name", "text"),
                ColumnDef("length", "integer"),
            ],
            foreign_keys=[ForeignKey("country_code", "country", "code")],
            natural_keys=True,
        ),
        TableSchema(
            "climate",
            [
                ColumnDef("country_code", "text", nullable=False),
                ColumnDef("type", "text"),
                ColumnDef("rainfall", "integer"),
            ],
            foreign_keys=[ForeignKey("country_code", "country", "code")],
            natural_keys=True,
        ),
        TableSchema(
            "organization",
            [
                ColumnDef("abbrev", "text", nullable=False),
                ColumnDef("name", "text"),
                ColumnDef("established", "integer"),
            ],
            primary_key="abbrev",
            natural_keys=True,
        ),
        TableSchema(
            "membership",
            [
                ColumnDef("organization", "text", nullable=False),
                ColumnDef("country_code", "text"),
                ColumnDef("type", "text"),
            ],
            foreign_keys=[
                ForeignKey("organization", "organization", "abbrev"),
                ForeignKey("country_code", "country", "code"),
            ],
            natural_keys=True,
        ),
    ]
    # The river table needs a primary key for river_source/river_estuary references.
    for table in tables:
        if table.name == "river":
            table.primary_key = "name"
    return DatabaseSchema(name="mondial", tables=tables)


def records_to_tables(records: Dict[str, List[dict]]) -> Dict[str, List[Row]]:
    """Ground-truth relational content for a set of records."""
    tables: Dict[str, List[Row]] = {name: [] for name in (
        "continent", "country", "province", "city", "city_population", "airport",
        "language", "religion", "ethnicgroup", "border", "economy",
        "country_population", "lake", "river", "mountain", "desert", "island",
        "sea", "river_source", "river_estuary", "encompasses", "coast", "climate",
        "organization", "membership",
    )}
    tables["continent"] = [(c["name"], c["area"]) for c in records["continents"]]
    for country in records["countries"]:
        code = country["code"]
        tables["country"].append(
            (code, country["name"], country["capital"], country["area"], country["population"])
        )
        for province in country["provinces"]:
            tables["province"].append((province["name"], code, province["area"]))
            for city in province["cities"]:
                tables["city"].append((city["name"], province["name"], city["population"]))
                for entry in city["history"]:
                    tables["city_population"].append((city["name"], entry["year"], entry["value"]))
                for airport in city["airports"]:
                    tables["airport"].append((airport["name"], city["name"], airport["iata"]))
        for kind, table in (("languages", "language"), ("religions", "religion"), ("ethnicgroups", "ethnicgroup")):
            for entry in country[kind]:
                tables[table].append((code, entry["name"], entry["percentage"]))
        for border in country["borders"]:
            tables["border"].append((code, border["neighbor"], border["length"]))
        economy = country["economy"]
        tables["economy"].append((code, economy["gdp"], economy["inflation"], economy["industry"]))
        for entry in country["histpop"]:
            tables["country_population"].append((code, entry["year"], entry["value"]))
        for kind, table, metric in (
            ("lakes", "lake", "area"),
            ("rivers", "river", "length"),
            ("mountains", "mountain", "elevation"),
            ("deserts", "desert", "area"),
            ("islands", "island", "area"),
            ("seas", "sea", "depth"),
        ):
            for entry in country[kind]:
                tables[table].append((code, entry["name"], entry[metric]))
        for river in country["rivers"]:
            tables["river_source"].append(
                (river["name"], river["source"]["longitude"], river["source"]["latitude"])
            )
            tables["river_estuary"].append(
                (river["name"], river["estuary"]["longitude"], river["estuary"]["latitude"])
            )
        for entry in country["encompassed"]:
            tables["encompasses"].append((code, entry["continent"], entry["percentage"]))
        for entry in country["coasts"]:
            tables["coast"].append((code, entry["sea_name"], entry["length"]))
        climate = country["climate"]
        tables["climate"].append((code, climate["type"], climate["rainfall"]))
    for organization in records["organizations"]:
        tables["organization"].append(
            (organization["abbrev"], organization["name"], organization["established"])
        )
        for member in organization["members"]:
            tables["membership"].append(
                (organization["abbrev"], member["country"], member["type"])
            )
    return tables


def ground_truth_counts(scale: int, seed: int = 17) -> Dict[str, int]:
    """Expected *distinct* row counts per table for a generated document."""
    tables = records_to_tables(make_records(scale, seed))
    return {name: len(set(rows)) for name, rows in tables.items()}


def _example_records() -> Dict[str, List[dict]]:
    """A compact two-country example exercising every one of the 25 tables."""
    continents = [
        {"name": "Europe", "area": 10_180_000},
        {"name": "Asia", "area": 44_579_000},
        # A continent no example country references: programs that read
        # continent names off the countries' "encompassed" links cannot cover
        # this row, which forces the learner onto the continent elements.
        {"name": "Oceania", "area": 8_526_000},
    ]
    countries = [
        {
            "code": "AA",
            "name": "Arvania",
            "capital": "Arvania City 0-0",
            "area": 240_000,
            "population": 8_200_000,
            "provinces": [
                {
                    "name": "Arvania Province 0",
                    "area": 52_000,
                    "cities": [
                        {
                            "name": "Arvania City 0-0",
                            "population": 1_400_000,
                            "history": [{"year": 1990, "value": 1_100_000}, {"year": 2000, "value": 1_250_000}],
                            "airports": [{"name": "Arvania Airport 0-0", "iata": "AA00"}],
                        },
                        {
                            "name": "Arvania City 0-1",
                            "population": 320_000,
                            "history": [{"year": 2010, "value": 300_000}],
                            "airports": [],
                        },
                    ],
                },
                {
                    "name": "Arvania Province 1",
                    "area": 18_000,
                    "cities": [
                        {
                            "name": "Arvania City 1-0",
                            "population": 95_000,
                            "history": [{"year": 1980, "value": 70_000}],
                            "airports": [{"name": "Arvania Airport 1-0", "iata": "AA10"}],
                        }
                    ],
                },
            ],
            "languages": [
                {"name": "Arvanic", "percentage": 78.5},
                {"name": "Belsian", "percentage": 12.0},
            ],
            "religions": [{"name": "Solarian", "percentage": 61.0}, {"name": "Tidal", "percentage": 22.5}],
            "ethnicgroups": [{"name": "Arvan", "percentage": 81.0}, {"name": "Bels", "percentage": 11.5}],
            "borders": [{"neighbor": "BB", "length": 412}, {"neighbor": "CC", "length": 88}],
            "economy": {"gdp": 310_000, "inflation": 2.4, "industry": 31.5},
            "histpop": [{"year": 1980, "value": 7_100_000}, {"year": 2000, "value": 7_900_000}],
            "lakes": [{"name": "Lake AA-0", "area": 356}],
            "rivers": [
                {
                    "name": "River AA-0",
                    "length": 1_230,
                    "source": {"longitude": 14.2, "latitude": 47.1},
                    "estuary": {"longitude": 18.9, "latitude": 44.3},
                }
            ],
            "mountains": [{"name": "Mount AA-0", "elevation": 2_912}],
            "deserts": [{"name": "Desert AA-0", "area": 5_200}],
            "islands": [{"name": "Island AA-0", "area": 412}],
            "seas": [{"name": "Sea AA-0", "depth": 3_800}],
            "encompassed": [{"continent": "Europe", "percentage": 100.0}],
            "coasts": [{"sea_name": "Sea AA-0", "length": 840}],
            "climate": {"type": "temperate", "rainfall": 720},
        },
        {
            "code": "BB",
            "name": "Belsia",
            "capital": "Belsia City 0-0",
            "area": 1_120_000,
            "population": 44_000_000,
            "provinces": [
                {
                    "name": "Belsia Province 0",
                    "area": 230_000,
                    "cities": [
                        {
                            "name": "Belsia City 0-0",
                            "population": 6_100_000,
                            "history": [{"year": 2000, "value": 5_400_000}],
                            "airports": [{"name": "Belsia Airport 0-0", "iata": "BB00"}],
                        }
                    ],
                }
            ],
            "languages": [{"name": "Belsian", "percentage": 90.5}],
            "religions": [
                {"name": "Lunarian", "percentage": 48.0},
                {"name": "Solarian", "percentage": 30.5},
            ],
            "ethnicgroups": [{"name": "Bels", "percentage": 70.0}],
            "borders": [{"neighbor": "AA", "length": 412}],
            "economy": {"gdp": 1_870_000, "inflation": 5.1, "industry": 42.0},
            "histpop": [{"year": 1990, "value": 39_000_000}],
            "lakes": [{"name": "Lake BB-0", "area": 1_040}],
            "rivers": [
                {
                    "name": "River BB-0",
                    "length": 2_910,
                    "source": {"longitude": 71.3, "latitude": 33.8},
                    "estuary": {"longitude": 66.0, "latitude": 25.2},
                }
            ],
            "mountains": [{"name": "Mount BB-0", "elevation": 7_140}],
            "deserts": [{"name": "Desert BB-0", "area": 210_000}],
            "islands": [{"name": "Island BB-0", "area": 2_300}],
            "seas": [{"name": "Sea BB-0", "depth": 5_100}],
            "encompassed": [{"continent": "Asia", "percentage": 100.0}],
            "coasts": [{"sea_name": "Sea BB-0", "length": 1_960}],
            "climate": {"type": "arid", "rainfall": 210},
        },
    ]
    organizations = [
        {
            "abbrev": "UN-X",
            "name": "Union of Nations",
            "established": 1946,
            "members": [
                {"country": "AA", "type": "member"},
                {"country": "BB", "type": "observer"},
            ],
        },
        {
            "abbrev": "TRC",
            "name": "Trade and Resource Council",
            "established": 1971,
            "members": [{"country": "BB", "type": "associate"}],
        },
    ]
    return {"continents": continents, "countries": countries, "organizations": organizations}


def dataset(scale: int = 12, seed: int = 17) -> DatasetBundle:
    """The MONDIAL dataset bundle used by examples, tests and benchmarks."""
    example_records = _example_records()
    example_tables = records_to_tables(example_records)
    return DatasetBundle(
        name="MONDIAL",
        format="xml",
        schema=schema(),
        example_tree=records_to_tree(example_records),
        table_examples=[
            TableExampleSpec(table=name, rows=rows) for name, rows in example_tables.items()
        ],
        generate=lambda s=scale: records_to_tree(make_records(s, seed)),
        ground_truth=lambda s=scale: ground_truth_counts(s, seed),
        description="Synthetic geographical database shaped like the MONDIAL XML document.",
    )
