"""Synthetic simulators of the paper's real-world datasets (Table 2)."""

from typing import Dict

from .base import DatasetBundle
from . import dblp, imdb, mondial, yelp


def all_datasets(scale: int = 10) -> Dict[str, DatasetBundle]:
    """The four Table 2 dataset bundles, keyed by name."""
    return {
        "DBLP": dblp.dataset(scale=scale),
        "IMDB": imdb.dataset(scale=scale),
        "MONDIAL": mondial.dataset(scale=max(4, scale // 2)),
        "YELP": yelp.dataset(scale=scale),
    }


__all__ = ["DatasetBundle", "all_datasets", "dblp", "imdb", "mondial", "yelp"]
