"""Shared infrastructure for the real-world dataset simulators.

The paper's Table 2 experiment migrates four real datasets (DBLP, IMDB,
MONDIAL, YELP) into normalized relational databases.  Those raw dumps are
multi-gigabyte downloads we cannot obtain offline, so each dataset is replaced
by a *simulator* that produces documents with the same hierarchical shape and
a target schema with the same table count (see DESIGN.md, "Substitutions").

Every simulator is exposed as a :class:`DatasetBundle`:

* ``schema``          — the normalized target :class:`DatabaseSchema`;
* ``example_tree``    — a small example document (tens of elements, like the
  examples the paper's authors wrote by hand);
* ``table_examples``  — the per-table example rows, with symbolic key labels;
* ``generate(scale)`` — a scalable generator for the full document;
* ``ground_truth(scale)`` — the expected per-table row counts for a generated
  document, used by the test-suite to validate end-to-end migrations.

The record→document and record→table conversions are derived from the same
in-memory records, so the example tables are consistent with the example
document by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..hdt.node import Scalar
from ..hdt.tree import HDT
from ..migration.engine import MigrationSpec, TableExampleSpec
from ..relational.schema import DatabaseSchema

Row = Tuple[Scalar, ...]


@dataclass
class DatasetBundle:
    """A simulated dataset: schema, example, generator and ground truth."""

    name: str
    format: str  # "xml" or "json"
    schema: DatabaseSchema
    example_tree: HDT
    table_examples: List[TableExampleSpec]
    generate: Callable[[int], HDT]
    ground_truth: Callable[[int], Dict[str, int]]
    description: str = ""

    def migration_spec(self) -> MigrationSpec:
        """The :class:`MigrationSpec` fed to the migration engine."""
        return MigrationSpec(
            schema=self.schema,
            example_tree=self.example_tree,
            table_examples=self.table_examples,
        )

    @property
    def num_tables(self) -> int:
        return self.schema.num_tables

    @property
    def num_columns(self) -> int:
        return self.schema.num_columns


def rng(seed: int) -> random.Random:
    """A deterministic random generator; all simulators derive data from it."""
    return random.Random(seed)


def pick(generator: random.Random, values: Sequence) -> object:
    """Choose one element deterministically."""
    return values[generator.randrange(len(values))]


WORDS = [
    "alpha", "beacon", "cedar", "delta", "ember", "falcon", "garnet", "harbor",
    "indigo", "juniper", "kestrel", "lumen", "meadow", "nimbus", "onyx",
    "prairie", "quartz", "raven", "sierra", "tundra", "umber", "vertex",
    "willow", "xenon", "yarrow", "zephyr",
]

FIRST_NAMES = [
    "Ada", "Brian", "Carla", "Dmitri", "Elena", "Farid", "Grace", "Hiro",
    "Ines", "Jonas", "Kavya", "Liam", "Mina", "Noor", "Omar", "Priya",
    "Quentin", "Rosa", "Sven", "Tara", "Uma", "Victor", "Wei", "Ximena",
    "Yusuf", "Zoe",
]

LAST_NAMES = [
    "Abbott", "Bauer", "Chen", "Dubois", "Eriksen", "Fischer", "Garcia",
    "Haddad", "Ivanov", "Jansen", "Kim", "Larsen", "Moreau", "Nakamura",
    "Okafor", "Petrov", "Quinn", "Rossi", "Sato", "Torres", "Ueda", "Varga",
    "Weber", "Xu", "Yamada", "Zhang",
]


def person_name(generator: random.Random) -> str:
    """A synthetic person name."""
    return f"{pick(generator, FIRST_NAMES)} {pick(generator, LAST_NAMES)}"


def title_phrase(generator: random.Random, length: int = 3) -> str:
    """A synthetic multi-word title."""
    return " ".join(str(pick(generator, WORDS)) for _ in range(length)).title()
