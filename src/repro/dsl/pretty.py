"""Pretty-printing of DSL programs in the paper's surface syntax.

The printer produces strings like::

    λτ. filter((λs.pchildren(children(s, Person), name, 0)){root(τ)} ×
               (λs.pchildren(children(s, Person), name, 0)){root(τ)},
               λt. ((λn.parent(n)) t[0]) = ((λn.parent(parent(n))) t[1]))

which mirrors Figures 3 and 8 of the paper, and is used in documentation,
logging and the EXPERIMENTS report.
"""

from __future__ import annotations

from .ast import (
    And,
    Child,
    Children,
    ColumnExtractor,
    CompareConst,
    CompareNodes,
    Descendants,
    False_,
    NodeExtractor,
    NodeVar,
    Not,
    Or,
    Parent,
    PChildren,
    Predicate,
    Program,
    TableExtractor,
    True_,
    Var,
)


def pretty_column(extractor: ColumnExtractor) -> str:
    """Render a column extractor π."""
    if isinstance(extractor, Var):
        return "s"
    if isinstance(extractor, Children):
        return f"children({pretty_column(extractor.source)}, {extractor.tag})"
    if isinstance(extractor, PChildren):
        return f"pchildren({pretty_column(extractor.source)}, {extractor.tag}, {extractor.pos})"
    if isinstance(extractor, Descendants):
        return f"descendants({pretty_column(extractor.source)}, {extractor.tag})"
    raise TypeError(f"unknown column extractor: {extractor!r}")


def pretty_table(table: TableExtractor) -> str:
    """Render a table extractor ψ."""
    parts = [f"(λs.{pretty_column(col)})" + "{root(τ)}" for col in table.columns]
    return " × ".join(parts)


def pretty_node_extractor(extractor: NodeExtractor) -> str:
    """Render a node extractor ϕ."""
    if isinstance(extractor, NodeVar):
        return "n"
    if isinstance(extractor, Parent):
        return f"parent({pretty_node_extractor(extractor.source)})"
    if isinstance(extractor, Child):
        return f"child({pretty_node_extractor(extractor.source)}, {extractor.tag}, {extractor.pos})"
    raise TypeError(f"unknown node extractor: {extractor!r}")


def pretty_predicate(predicate: Predicate) -> str:
    """Render a predicate φ."""
    if isinstance(predicate, True_):
        return "true"
    if isinstance(predicate, False_):
        return "false"
    if isinstance(predicate, CompareConst):
        lhs = f"((λn.{pretty_node_extractor(predicate.extractor)}) t[{predicate.column}])"
        const = repr(predicate.constant) if isinstance(predicate.constant, str) else str(predicate.constant)
        return f"{lhs} {predicate.op.value} {const}"
    if isinstance(predicate, CompareNodes):
        lhs = f"((λn.{pretty_node_extractor(predicate.left_extractor)}) t[{predicate.left_column}])"
        rhs = f"((λn.{pretty_node_extractor(predicate.right_extractor)}) t[{predicate.right_column}])"
        return f"{lhs} {predicate.op.value} {rhs}"
    if isinstance(predicate, And):
        return f"({pretty_predicate(predicate.left)} ∧ {pretty_predicate(predicate.right)})"
    if isinstance(predicate, Or):
        return f"({pretty_predicate(predicate.left)} ∨ {pretty_predicate(predicate.right)})"
    if isinstance(predicate, Not):
        return f"¬{pretty_predicate(predicate.operand)}"
    raise TypeError(f"unknown predicate: {predicate!r}")


def pretty_program(program: Program) -> str:
    """Render a full program P in the paper's surface syntax."""
    return f"λτ. filter({pretty_table(program.table)}, λt. {pretty_predicate(program.predicate)})"
