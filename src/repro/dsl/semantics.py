"""Denotational semantics of the DSL (Figure 7 of the paper).

The central entry points are:

* :func:`eval_column` — evaluate a column extractor π on a set of nodes,
* :func:`eval_table` — evaluate a table extractor ψ, producing the tuples of
  the intermediate table (tuples of *nodes*),
* :func:`eval_node_extractor` — evaluate a node extractor ϕ on a node
  (returning ``None`` for ⊥),
* :func:`eval_predicate` — evaluate a predicate φ on a tuple of nodes,
* :func:`run_program` — evaluate a full program, producing the output table
  as a list of tuples of *data values*.

Column extractors return nodes in document order with duplicates removed,
which keeps evaluation deterministic.  :func:`run_program` materializes the
cross product exactly as the formal semantics prescribes; the optimizer
(:mod:`repro.optimizer`) provides an equivalent but asymptotically better
execution strategy.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..hdt.node import Node, Scalar
from ..hdt.tree import HDT, TagIndex
from .ast import (
    And,
    Child,
    Children,
    ColumnExtractor,
    CompareConst,
    CompareNodes,
    Descendants,
    False_,
    NodeExtractor,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Predicate,
    Program,
    TableExtractor,
    True_,
    Var,
)

NodeTuple = Tuple[Node, ...]
DataTuple = Tuple[Scalar, ...]


class EvaluationError(Exception):
    """Raised when a DSL term cannot be evaluated (malformed AST)."""


# --------------------------------------------------------------------------- #
# Column extractors
# --------------------------------------------------------------------------- #


#: Distinguishes "not cached yet" from any cached value (including ``[]``):
#: empty column results are legitimate and must be cache hits, and a stray
#: ``None`` stored in the cache must not be returned as a result.
_CACHE_MISS = object()


def eval_column(
    extractor: ColumnExtractor,
    nodes: Sequence[Node],
    *,
    cache: Optional[Dict] = None,
    index: Optional[TagIndex] = None,
) -> List[Node]:
    """Evaluate a column extractor on an ordered set of nodes.

    ``cache`` is an optional memoization dictionary keyed by
    ``(extractor, tuple of node uids)`` — a frozen, hashable key — so the
    optimizer can share one cache across all columns of a program and common
    prefixes are evaluated once.  ``index`` is an optional
    :class:`~repro.hdt.tree.TagIndex`; when provided, ``Descendants`` and
    ``Children`` steps answer from the index instead of re-traversing the
    document.
    """
    if cache is not None:
        key = (extractor, tuple(n.uid for n in nodes))
        hit = cache.get(key, _CACHE_MISS)
        if hit is not _CACHE_MISS and hit is not None:
            return hit

    result = _eval_column(extractor, nodes, cache, index)

    if cache is not None:
        cache[key] = result
    return result


def _eval_column(
    extractor: ColumnExtractor,
    nodes: Sequence[Node],
    cache,
    index: Optional[TagIndex],
) -> List[Node]:
    if isinstance(extractor, Var):
        return _dedupe(nodes)
    if isinstance(extractor, Children):
        sources = eval_column(extractor.source, nodes, cache=cache, index=index)
        if index is not None:
            children = index.children_with_tag
            return _dedupe(c for n in sources if index.covers(n) for c in children(n, extractor.tag))
        return _dedupe(c for n in sources for c in n.children_with_tag(extractor.tag))
    if isinstance(extractor, PChildren):
        sources = eval_column(extractor.source, nodes, cache=cache, index=index)
        out: List[Node] = []
        for n in sources:
            child = n.child_with(extractor.tag, extractor.pos)
            if child is not None:
                out.append(child)
        return _dedupe(out)
    if isinstance(extractor, Descendants):
        sources = eval_column(extractor.source, nodes, cache=cache, index=index)
        if index is not None:
            descendants = index.descendants_with_tag
            return _dedupe(
                d for n in sources if index.covers(n) for d in descendants(n, extractor.tag)
            )
        return _dedupe(d for n in sources for d in n.descendants_with_tag(extractor.tag))
    raise EvaluationError(f"unknown column extractor: {extractor!r}")


def eval_column_on_tree(
    extractor: ColumnExtractor,
    tree: HDT,
    *,
    cache: Optional[Dict] = None,
    use_index: bool = True,
) -> List[Node]:
    """Evaluate ``(λs.π){root(τ)}`` — i.e. apply the extractor to the root.

    ``use_index=True`` (the default) builds/reuses the tree's
    :class:`~repro.hdt.tree.TagIndex` so repeated ``descendants``/``children``
    steps stop re-traversing the document; pass ``False`` to force the plain
    traversal (the reference semantics used by equivalence tests).
    """
    index = tree.tag_index() if use_index else None
    return eval_column(extractor, [tree.root], cache=cache, index=index)


def _dedupe(nodes: Iterable[Node]) -> List[Node]:
    seen = set()
    out: List[Node] = []
    for node in nodes:
        if node.uid not in seen:
            seen.add(node.uid)
            out.append(node)
    return out


# --------------------------------------------------------------------------- #
# Table extractors
# --------------------------------------------------------------------------- #


def eval_table(
    table: TableExtractor, tree: HDT, *, cache: Optional[Dict] = None
) -> List[NodeTuple]:
    """Evaluate a table extractor, producing the intermediate table of node tuples."""
    columns = [eval_column_on_tree(col, tree, cache=cache) for col in table.columns]
    return [tuple(combo) for combo in product(*columns)]


def eval_table_columns(
    table: TableExtractor, tree: HDT, *, cache: Optional[Dict] = None
) -> List[List[Node]]:
    """Evaluate each column extractor of a table extractor separately."""
    return [eval_column_on_tree(col, tree, cache=cache) for col in table.columns]


# --------------------------------------------------------------------------- #
# Node extractors
# --------------------------------------------------------------------------- #


def eval_node_extractor(extractor: NodeExtractor, node: Optional[Node]) -> Optional[Node]:
    """Evaluate a node extractor; ``None`` plays the role of ⊥."""
    if node is None:
        return None
    if isinstance(extractor, NodeVar):
        return node
    if isinstance(extractor, Parent):
        inner = eval_node_extractor(extractor.source, node)
        return None if inner is None else inner.parent
    if isinstance(extractor, Child):
        inner = eval_node_extractor(extractor.source, node)
        return None if inner is None else inner.child_with(extractor.tag, extractor.pos)
    raise EvaluationError(f"unknown node extractor: {extractor!r}")


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


def compare_values(left: Scalar, op: Op, right: Scalar) -> bool:
    """Compare two scalar data values with the given operator.

    Numeric values compare numerically; otherwise both sides are compared as
    strings for ordering operators, and by equality of the raw values for
    equality operators.  Mixed numeric/string comparisons with ordering
    operators evaluate to ``False`` rather than raising.
    """
    if op is Op.EQ:
        return _values_equal(left, right)
    if op is Op.NE:
        return not _values_equal(left, right)

    left_num, right_num = _as_number(left), _as_number(right)
    if left_num is not None and right_num is not None:
        a, b = left_num, right_num
    elif isinstance(left, str) and isinstance(right, str):
        a, b = left, right
    else:
        return False

    if op is Op.LT:
        return a < b
    if op is Op.LE:
        return a <= b
    if op is Op.GT:
        return a > b
    if op is Op.GE:
        return a >= b
    raise EvaluationError(f"unknown operator: {op!r}")


def _values_equal(left: Scalar, right: Scalar) -> bool:
    left_num, right_num = _as_number(left), _as_number(right)
    if left_num is not None and right_num is not None:
        return left_num == right_num
    return left == right


def _as_number(value: Scalar):
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return value
    return None


def eval_predicate(predicate: Predicate, row: NodeTuple) -> bool:
    """Evaluate a predicate on a tuple of HDT nodes (Figure 7 semantics)."""
    if isinstance(predicate, True_):
        return True
    if isinstance(predicate, False_):
        return False
    if isinstance(predicate, And):
        return eval_predicate(predicate.left, row) and eval_predicate(predicate.right, row)
    if isinstance(predicate, Or):
        return eval_predicate(predicate.left, row) or eval_predicate(predicate.right, row)
    if isinstance(predicate, Not):
        return not eval_predicate(predicate.operand, row)
    if isinstance(predicate, CompareConst):
        node = _extract(predicate.extractor, predicate.column, row)
        if node is None:
            return False
        return compare_values(node.data, predicate.op, predicate.constant)
    if isinstance(predicate, CompareNodes):
        left = _extract(predicate.left_extractor, predicate.left_column, row)
        right = _extract(predicate.right_extractor, predicate.right_column, row)
        if left is None or right is None:
            return False
        if left.is_leaf() and right.is_leaf():
            return compare_values(left.data, predicate.op, right.data)
        if predicate.op is Op.EQ and not left.is_leaf() and not right.is_leaf():
            return left is right
        return False
    raise EvaluationError(f"unknown predicate: {predicate!r}")


def _extract(extractor: NodeExtractor, column: int, row: NodeTuple) -> Optional[Node]:
    if column < 0 or column >= len(row):
        return None
    return eval_node_extractor(extractor, row[column])


# --------------------------------------------------------------------------- #
# Programs
# --------------------------------------------------------------------------- #


def run_program(program: Program, tree: HDT, *, cache: Optional[Dict] = None) -> List[DataTuple]:
    """Run a full DSL program on an HDT, returning tuples of data values.

    This is the direct implementation of the formal semantics: materialize the
    intermediate table, filter it with the predicate, and project every
    surviving node tuple onto the data stored at its nodes.
    """
    rows: List[DataTuple] = []
    for node_row in eval_table(program.table, tree, cache=cache):
        if eval_predicate(program.predicate, node_row):
            rows.append(tuple(node.data for node in node_row))
    return rows


def run_program_nodes(
    program: Program, tree: HDT, *, cache: Optional[Dict] = None
) -> List[NodeTuple]:
    """Like :func:`run_program` but return the surviving node tuples themselves."""
    return [
        node_row
        for node_row in eval_table(program.table, tree, cache=cache)
        if eval_predicate(program.predicate, node_row)
    ]
