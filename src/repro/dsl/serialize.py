"""Lossless JSON serialization of DSL programs, key rules and schemas.

The paper's economic argument is "learn once, run on the full dataset": the
synthesized program is the durable artifact, not the synthesis run.  This
module gives every artifact the runtime needs a stable JSON wire format:

* column/table/node extractors and predicates (the full AST of Figure 6),
* :class:`~repro.dsl.ast.Program`,
* :class:`~repro.migration.keys.LinkRule` / ``ForeignKeyRule``,
* :class:`~repro.relational.schema.ColumnDef` / ``ForeignKey`` /
  ``TableSchema`` / ``DatabaseSchema``.

Every ``*_to_json`` function returns plain JSON-compatible values (dicts,
lists, scalars) and every ``*_from_json`` function reconstructs an object that
is ``==`` to the original (the AST dataclasses are frozen, so equality is
structural).  Each composite payload carries a ``"kind"`` discriminator so
that payloads are self-describing and future constructs can be added without
breaking old plans.

The round-trip property — ``x == from_json(to_json(x))`` — is enforced for
every construct by ``tests/test_serialize.py``.
"""

from __future__ import annotations

from typing import Any

from ..hdt.node import Scalar
from ..relational.schema import ColumnDef, DatabaseSchema, ForeignKey, TableSchema
from .ast import (
    And,
    Child,
    Children,
    ColumnExtractor,
    CompareConst,
    CompareNodes,
    Descendants,
    False_,
    NodeExtractor,
    NodeVar,
    Not,
    Op,
    Or,
    Parent,
    PChildren,
    Predicate,
    Program,
    TableExtractor,
    True_,
    Var,
)

Json = Any

FORMAT_VERSION = 1
"""Bumped whenever the wire format changes incompatibly."""


class SerializationError(Exception):
    """Raised when a payload cannot be (de)serialized."""


# --------------------------------------------------------------------------- #
# Scalars
# --------------------------------------------------------------------------- #

# JSON has no separate int/float/bool distinction problem, but booleans are a
# subtype of int in Python and ``json`` preserves all four scalar shapes, so
# data constants round-trip as-is.


def _check_scalar(value: Scalar, context: str) -> Scalar:
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise SerializationError(f"non-scalar constant {value!r} in {context}")
    return value


# --------------------------------------------------------------------------- #
# Column extractors
# --------------------------------------------------------------------------- #


def column_to_json(extractor: ColumnExtractor) -> Json:
    if isinstance(extractor, Var):
        return {"kind": "var"}
    if isinstance(extractor, Children):
        return {"kind": "children", "source": column_to_json(extractor.source), "tag": extractor.tag}
    if isinstance(extractor, PChildren):
        return {
            "kind": "pchildren",
            "source": column_to_json(extractor.source),
            "tag": extractor.tag,
            "pos": extractor.pos,
        }
    if isinstance(extractor, Descendants):
        return {
            "kind": "descendants",
            "source": column_to_json(extractor.source),
            "tag": extractor.tag,
        }
    raise SerializationError(f"unknown column extractor: {extractor!r}")


def column_from_json(payload: Json) -> ColumnExtractor:
    kind = _kind(payload, "column extractor")
    if kind == "var":
        return Var()
    if kind == "children":
        return Children(column_from_json(payload["source"]), payload["tag"])
    if kind == "pchildren":
        return PChildren(column_from_json(payload["source"]), payload["tag"], payload["pos"])
    if kind == "descendants":
        return Descendants(column_from_json(payload["source"]), payload["tag"])
    raise SerializationError(f"unknown column extractor kind {kind!r}")


# --------------------------------------------------------------------------- #
# Node extractors
# --------------------------------------------------------------------------- #


def node_extractor_to_json(extractor: NodeExtractor) -> Json:
    if isinstance(extractor, NodeVar):
        return {"kind": "node_var"}
    if isinstance(extractor, Parent):
        return {"kind": "parent", "source": node_extractor_to_json(extractor.source)}
    if isinstance(extractor, Child):
        return {
            "kind": "child",
            "source": node_extractor_to_json(extractor.source),
            "tag": extractor.tag,
            "pos": extractor.pos,
        }
    raise SerializationError(f"unknown node extractor: {extractor!r}")


def node_extractor_from_json(payload: Json) -> NodeExtractor:
    kind = _kind(payload, "node extractor")
    if kind == "node_var":
        return NodeVar()
    if kind == "parent":
        return Parent(node_extractor_from_json(payload["source"]))
    if kind == "child":
        return Child(node_extractor_from_json(payload["source"]), payload["tag"], payload["pos"])
    raise SerializationError(f"unknown node extractor kind {kind!r}")


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


def predicate_to_json(predicate: Predicate) -> Json:
    if isinstance(predicate, True_):
        return {"kind": "true"}
    if isinstance(predicate, False_):
        return {"kind": "false"}
    if isinstance(predicate, CompareConst):
        return {
            "kind": "compare_const",
            "extractor": node_extractor_to_json(predicate.extractor),
            "column": predicate.column,
            "op": predicate.op.value,
            # Booleans are ints in Python; tag the constant's shape explicitly
            # so True/1 and 1/1.0 survive the trip bit-for-bit.
            "constant": _constant_to_json(predicate.constant),
        }
    if isinstance(predicate, CompareNodes):
        return {
            "kind": "compare_nodes",
            "left_extractor": node_extractor_to_json(predicate.left_extractor),
            "left_column": predicate.left_column,
            "op": predicate.op.value,
            "right_extractor": node_extractor_to_json(predicate.right_extractor),
            "right_column": predicate.right_column,
        }
    if isinstance(predicate, And):
        return {
            "kind": "and",
            "left": predicate_to_json(predicate.left),
            "right": predicate_to_json(predicate.right),
        }
    if isinstance(predicate, Or):
        return {
            "kind": "or",
            "left": predicate_to_json(predicate.left),
            "right": predicate_to_json(predicate.right),
        }
    if isinstance(predicate, Not):
        return {"kind": "not", "operand": predicate_to_json(predicate.operand)}
    raise SerializationError(f"unknown predicate: {predicate!r}")


def predicate_from_json(payload: Json) -> Predicate:
    kind = _kind(payload, "predicate")
    if kind == "true":
        return True_()
    if kind == "false":
        return False_()
    if kind == "compare_const":
        return CompareConst(
            extractor=node_extractor_from_json(payload["extractor"]),
            column=payload["column"],
            op=_op_from_json(payload["op"]),
            constant=_constant_from_json(payload["constant"]),
        )
    if kind == "compare_nodes":
        return CompareNodes(
            left_extractor=node_extractor_from_json(payload["left_extractor"]),
            left_column=payload["left_column"],
            op=_op_from_json(payload["op"]),
            right_extractor=node_extractor_from_json(payload["right_extractor"]),
            right_column=payload["right_column"],
        )
    if kind == "and":
        return And(predicate_from_json(payload["left"]), predicate_from_json(payload["right"]))
    if kind == "or":
        return Or(predicate_from_json(payload["left"]), predicate_from_json(payload["right"]))
    if kind == "not":
        return Not(predicate_from_json(payload["operand"]))
    raise SerializationError(f"unknown predicate kind {kind!r}")


def _constant_to_json(value: Scalar) -> Json:
    _check_scalar(value, "predicate constant")
    if isinstance(value, bool):
        return {"type": "bool", "value": value}
    if isinstance(value, float):
        return {"type": "float", "value": value}
    if isinstance(value, int):
        return {"type": "int", "value": value}
    return value  # str or None


def _constant_from_json(payload: Json) -> Scalar:
    if isinstance(payload, dict):
        kind = payload.get("type")
        if kind == "bool":
            return bool(payload["value"])
        if kind == "float":
            return float(payload["value"])
        if kind == "int":
            return int(payload["value"])
        raise SerializationError(f"unknown constant type {kind!r}")
    return payload


def scalar_to_json(value: Scalar) -> Json:
    """Shape-preserving scalar encoding (public twin of the constant codec).

    Booleans are ints in Python and ``json`` would happily collapse ``True``
    vs ``1`` vs ``1.0`` distinctions on the reader side; the tagged encoding
    keeps every scalar shape bit-for-bit.  Used wherever artifacts carry raw
    document values — predicate constants here, synthesis-context value
    classes and column caches in :mod:`repro.synthesis.serialize`.

    Examples
    --------
    >>> scalar_from_json(scalar_to_json(True)), scalar_from_json(scalar_to_json(1))
    (True, 1)
    """
    return _constant_to_json(value)


def scalar_from_json(payload: Json) -> Scalar:
    """Inverse of :func:`scalar_to_json`."""
    return _constant_from_json(payload)


def op_to_json(op: Op) -> str:
    """The stable wire symbol of a comparison operator."""
    return op.value


def op_from_json(symbol: str) -> Op:
    """Inverse of :func:`op_to_json`; raises on unknown symbols."""
    return _op_from_json(symbol)


def _op_from_json(symbol: str) -> Op:
    for op in Op:
        if op.value == symbol:
            return op
    raise SerializationError(f"unknown comparison operator {symbol!r}")


# --------------------------------------------------------------------------- #
# Programs
# --------------------------------------------------------------------------- #


def program_to_json(program: Program) -> Json:
    return {
        "kind": "program",
        "version": FORMAT_VERSION,
        "columns": [column_to_json(c) for c in program.table.columns],
        "predicate": predicate_to_json(program.predicate),
    }


def program_from_json(payload: Json) -> Program:
    if _kind(payload, "program") != "program":
        raise SerializationError("payload is not a serialized program")
    version = payload.get("version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"program was serialized with format version {version}, "
            f"this runtime supports up to {FORMAT_VERSION}"
        )
    table = TableExtractor(tuple(column_from_json(c) for c in payload["columns"]))
    return Program(table=table, predicate=predicate_from_json(payload["predicate"]))


# --------------------------------------------------------------------------- #
# Key rules (imported lazily to avoid a dsl -> migration import cycle)
# --------------------------------------------------------------------------- #


def link_rule_to_json(rule) -> Json:
    return {
        "kind": "link_rule",
        "source_column": rule.source_column,
        "extractor": node_extractor_to_json(rule.extractor),
    }


def link_rule_from_json(payload: Json):
    from ..migration.keys import LinkRule

    if _kind(payload, "link rule") != "link_rule":
        raise SerializationError("payload is not a serialized link rule")
    return LinkRule(
        source_column=payload["source_column"],
        extractor=node_extractor_from_json(payload["extractor"]),
    )


def foreign_key_rule_to_json(rule) -> Json:
    return {
        "kind": "foreign_key_rule",
        "column": rule.column,
        "target_table": rule.target_table,
        "links": [link_rule_to_json(link) for link in rule.links],
    }


def foreign_key_rule_from_json(payload: Json):
    from ..migration.keys import ForeignKeyRule

    if _kind(payload, "foreign key rule") != "foreign_key_rule":
        raise SerializationError("payload is not a serialized foreign key rule")
    return ForeignKeyRule(
        column=payload["column"],
        target_table=payload["target_table"],
        links=[link_rule_from_json(link) for link in payload["links"]],
    )


# --------------------------------------------------------------------------- #
# Relational schemas
# --------------------------------------------------------------------------- #


def schema_to_json(schema: DatabaseSchema) -> Json:
    return {
        "kind": "database_schema",
        "name": schema.name,
        "tables": [table_schema_to_json(t) for t in schema.tables],
    }


def schema_from_json(payload: Json) -> DatabaseSchema:
    if _kind(payload, "database schema") != "database_schema":
        raise SerializationError("payload is not a serialized database schema")
    return DatabaseSchema(
        name=payload["name"],
        tables=[table_schema_from_json(t) for t in payload["tables"]],
    )


def table_schema_to_json(table: TableSchema) -> Json:
    return {
        "name": table.name,
        "columns": [
            {"name": c.name, "dtype": c.dtype, "nullable": c.nullable} for c in table.columns
        ],
        "primary_key": table.primary_key,
        "foreign_keys": [
            {"column": fk.column, "target_table": fk.target_table, "target_column": fk.target_column}
            for fk in table.foreign_keys
        ],
        "natural_keys": table.natural_keys,
    }


def table_schema_from_json(payload: Json) -> TableSchema:
    return TableSchema(
        name=payload["name"],
        columns=[
            ColumnDef(name=c["name"], dtype=c["dtype"], nullable=c["nullable"])
            for c in payload["columns"]
        ],
        primary_key=payload.get("primary_key"),
        foreign_keys=[
            ForeignKey(fk["column"], fk["target_table"], fk["target_column"])
            for fk in payload.get("foreign_keys", [])
        ],
        natural_keys=payload.get("natural_keys", False),
    )


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def _kind(payload: Json, context: str) -> str:
    if not isinstance(payload, dict) or "kind" not in payload:
        raise SerializationError(f"malformed {context} payload: {payload!r}")
    return payload["kind"]
