"""Abstract syntax of the tree-to-table DSL (Figure 6 of the paper).

The grammar is::

    Program          P  := λτ. filter(ψ, λt. φ)
    Table extractor  ψ  := (λs.π){root(τ)} | ψ1 × ψ2
    Column extractor π  := s | children(π, tag) | pchildren(π, tag, pos)
                         | descendants(π, tag)
    Predicate        φ  := ((λn.ϕ) t[i]) ⊙ c
                         | ((λn.ϕ1) t[i]) ⊙ ((λn.ϕ2) t[j])
                         | φ1 ∧ φ2 | φ1 ∨ φ2 | ¬φ
    Node extractor   ϕ  := n | parent(ϕ) | child(ϕ, tag, pos)

Every AST node is an immutable, hashable dataclass so that synthesized
fragments can be deduplicated, memoized and used as dictionary keys.  The
comparison operator ⊙ ranges over =, ≠, <, ≤, >, ≥.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Tuple, Union

from ..hdt.node import Scalar


class Op(Enum):
    """Comparison operators usable in atomic predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "Op":
        """The operator obtained by swapping the two operands."""
        return {
            Op.EQ: Op.EQ,
            Op.NE: Op.NE,
            Op.LT: Op.GT,
            Op.LE: Op.GE,
            Op.GT: Op.LT,
            Op.GE: Op.LE,
        }[self]

    def negated(self) -> "Op":
        """The operator equivalent to the logical negation of this one."""
        return {
            Op.EQ: Op.NE,
            Op.NE: Op.EQ,
            Op.LT: Op.GE,
            Op.LE: Op.GT,
            Op.GT: Op.LE,
            Op.GE: Op.LT,
        }[self]


# --------------------------------------------------------------------------- #
# Column extractors
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ColumnExtractor:
    """Base class for column extractors π."""

    def size(self) -> int:
        """Number of constructs in the extractor (used by the cost function)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Var(ColumnExtractor):
    """The bound variable ``s`` (the set of nodes passed in, initially {root})."""

    def size(self) -> int:
        return 0


@dataclass(frozen=True)
class Children(ColumnExtractor):
    """``children(π, tag)`` — all children with the given tag."""

    source: ColumnExtractor
    tag: str

    def size(self) -> int:
        return 1 + self.source.size()


@dataclass(frozen=True)
class PChildren(ColumnExtractor):
    """``pchildren(π, tag, pos)`` — children with the given tag and position."""

    source: ColumnExtractor
    tag: str
    pos: int

    def size(self) -> int:
        return 1 + self.source.size()


@dataclass(frozen=True)
class Descendants(ColumnExtractor):
    """``descendants(π, tag)`` — all proper descendants with the given tag."""

    source: ColumnExtractor
    tag: str

    def size(self) -> int:
        return 1 + self.source.size()


# --------------------------------------------------------------------------- #
# Table extractors
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TableExtractor:
    """``(λs.π1){root(τ)} × ... × (λs.πk){root(τ)}``.

    The paper writes table extractors as nested binary cross products; since
    the product is associative we store the flattened tuple of column
    extractors directly.
    """

    columns: Tuple[ColumnExtractor, ...]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def size(self) -> int:
        return sum(c.size() for c in self.columns)


# --------------------------------------------------------------------------- #
# Node extractors
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class NodeExtractor:
    """Base class for node extractors ϕ."""

    def size(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class NodeVar(NodeExtractor):
    """The bound node variable ``n``."""

    def size(self) -> int:
        return 0


@dataclass(frozen=True)
class Parent(NodeExtractor):
    """``parent(ϕ)`` — the parent of the extracted node (⊥ at the root)."""

    source: NodeExtractor

    def size(self) -> int:
        return 1 + self.source.size()


@dataclass(frozen=True)
class Child(NodeExtractor):
    """``child(ϕ, tag, pos)`` — the child with the given tag and position."""

    source: NodeExtractor
    tag: str
    pos: int

    def size(self) -> int:
        return 1 + self.source.size()


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Predicate:
    """Base class for row-filter predicates φ."""

    def size(self) -> int:
        """Number of atomic predicates contained in this formula."""
        raise NotImplementedError


@dataclass(frozen=True)
class True_(Predicate):
    """The trivially-true predicate (used when no filtering is required)."""

    def size(self) -> int:
        return 0


@dataclass(frozen=True)
class False_(Predicate):
    """The trivially-false predicate (empty output)."""

    def size(self) -> int:
        return 0


@dataclass(frozen=True)
class CompareConst(Predicate):
    """``((λn.ϕ) t[i]) ⊙ c`` — compare data reachable from column i to a constant."""

    extractor: NodeExtractor
    column: int
    op: Op
    constant: Scalar

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class CompareNodes(Predicate):
    """``((λn.ϕ1) t[i]) ⊙ ((λn.ϕ2) t[j])`` — compare two extracted nodes."""

    left_extractor: NodeExtractor
    left_column: int
    op: Op
    right_extractor: NodeExtractor
    right_column: int

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def size(self) -> int:
        return self.left.size() + self.right.size()


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def size(self) -> int:
        return self.left.size() + self.right.size()


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def size(self) -> int:
        return self.operand.size()


# --------------------------------------------------------------------------- #
# Programs
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Program:
    """``λτ. filter(ψ, λt. φ)`` — the top-level DSL program."""

    table: TableExtractor
    predicate: Predicate = field(default_factory=True_)

    @property
    def arity(self) -> int:
        return self.table.arity

    def num_atomic_predicates(self) -> int:
        return self.predicate.size()

    def num_extractor_constructs(self) -> int:
        return self.table.size()


def conjoin(predicates) -> Predicate:
    """Build the conjunction of an iterable of predicates (True_ if empty)."""
    result: Predicate = True_()
    for pred in predicates:
        result = pred if isinstance(result, True_) else And(result, pred)
    return result


def disjoin(predicates) -> Predicate:
    """Build the disjunction of an iterable of predicates (False_ if empty)."""
    result: Predicate = False_()
    for pred in predicates:
        result = pred if isinstance(result, False_) else Or(result, pred)
    return result
