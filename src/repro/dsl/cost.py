"""Heuristic cost function θ used to rank candidate programs (Section 6).

The paper's ranking is an Occam's-razor heuristic: among programs consistent
with the examples, prefer the one with

1. the fewest *atomic predicates* in the row filter, then
2. the fewest constructs in the column extractors.

We extend the tuple with two deterministic tie-breakers (total predicate AST
size and the pretty-printed text) so that synthesis results are reproducible
run-to-run, which the evaluation harness relies on.
"""

from __future__ import annotations

from typing import Tuple

from .ast import ColumnExtractor, Predicate, Program
from .pretty import pretty_program

CostTuple = Tuple[int, int, int, str]


def predicate_cost(predicate: Predicate) -> int:
    """Number of atomic predicates in a formula."""
    return predicate.size()


def extractor_cost(extractor: ColumnExtractor) -> int:
    """Number of constructs in a column extractor."""
    return extractor.size()


def program_cost(program: Program) -> CostTuple:
    """The cost tuple θ(P); lower tuples are simpler programs."""
    return (
        program.num_atomic_predicates(),
        program.num_extractor_constructs(),
        _predicate_depth(program.predicate),
        pretty_program(program),
    )


def _predicate_depth(predicate: Predicate) -> int:
    """Total number of boolean connectives, a secondary simplicity signal."""
    from .ast import And, Not, Or

    if isinstance(predicate, And) or isinstance(predicate, Or):
        return 1 + _predicate_depth(predicate.left) + _predicate_depth(predicate.right)
    if isinstance(predicate, Not):
        return 1 + _predicate_depth(predicate.operand)
    return 0


def simpler(a: Program, b: Program) -> Program:
    """Return the simpler of two programs according to θ."""
    return a if program_cost(a) <= program_cost(b) else b
