"""Relational substrate: tables, schemas with keys, and an in-memory database."""

from .database import Database, IntegrityError
from .schema import ColumnDef, DatabaseSchema, ForeignKey, SchemaError, TableSchema
from .table import Row, Table, TableError

__all__ = [
    "Database",
    "IntegrityError",
    "ColumnDef",
    "DatabaseSchema",
    "ForeignKey",
    "SchemaError",
    "TableSchema",
    "Row",
    "Table",
    "TableError",
]
