"""Relational tables.

The paper represents relational tables as bags of tuples.  This module
provides a small but complete in-memory table abstraction used throughout the
reproduction: output examples are tables, synthesized programs produce tables,
and the migration engine loads tables into a :class:`~repro.relational.database.Database`.

Beyond storage, the class offers the relational-algebra operations the test
suite and examples rely on (projection, selection, cross product, natural and
equi-joins, distinct, rename, union) plus CSV import/export.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..hdt.node import Scalar

Row = Tuple[Scalar, ...]


class TableError(Exception):
    """Raised on malformed table operations (arity mismatch, unknown column...)."""


@dataclass
class Table:
    """A named relational table: an ordered list of column names and a bag of rows."""

    name: str
    columns: List[str]
    rows: List[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise TableError(f"duplicate column names in table {self.name!r}")
        self.rows = [self._check_row(tuple(row)) for row in self.rows]

    # ------------------------------------------------------------- mutation
    def _check_row(self, row: Row) -> Row:
        if len(row) != len(self.columns):
            raise TableError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"with {len(self.columns)} columns"
            )
        return row

    def insert(self, row: Sequence[Scalar]) -> None:
        """Append one row (arity-checked)."""
        self.rows.append(self._check_row(tuple(row)))

    def insert_many(self, rows: Iterable[Sequence[Scalar]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    # -------------------------------------------------------------- queries
    @property
    def arity(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as error:
            raise TableError(f"unknown column {column!r} in table {self.name!r}") from error

    def column_values(self, column: str) -> List[Scalar]:
        """All values of one column (with duplicates, in row order)."""
        idx = self.column_index(column)
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> List[Dict[str, Scalar]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def contains_row(self, row: Sequence[Scalar]) -> bool:
        """Exact membership test."""
        return tuple(row) in set(self.rows)

    # --------------------------------------------------- relational algebra
    def project(self, columns: Sequence[str], *, name: Optional[str] = None) -> "Table":
        """Projection onto the given columns (bag semantics, keeps duplicates)."""
        indices = [self.column_index(c) for c in columns]
        projected = [tuple(row[i] for i in indices) for row in self.rows]
        return Table(name or f"{self.name}_proj", list(columns), projected)

    def select(self, condition: Callable[[Dict[str, Scalar]], bool], *, name: Optional[str] = None) -> "Table":
        """Selection by an arbitrary row predicate over named values."""
        kept = [row for row in self.rows if condition(dict(zip(self.columns, row)))]
        return Table(name or f"{self.name}_sel", list(self.columns), kept)

    def distinct(self, *, name: Optional[str] = None) -> "Table":
        """Duplicate elimination, preserving first-occurrence order."""
        seen = set()
        unique: List[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Table(name or f"{self.name}_distinct", list(self.columns), unique)

    def rename(self, mapping: Dict[str, str], *, name: Optional[str] = None) -> "Table":
        """Rename columns according to ``mapping`` (missing names unchanged)."""
        renamed = [mapping.get(c, c) for c in self.columns]
        return Table(name or self.name, renamed, list(self.rows))

    def cross(self, other: "Table", *, name: Optional[str] = None) -> "Table":
        """Cartesian product; column-name clashes get the other table's prefix."""
        other_columns = [
            c if c not in self.columns else f"{other.name}.{c}" for c in other.columns
        ]
        rows = [left + right for left in self.rows for right in other.rows]
        return Table(name or f"{self.name}_x_{other.name}", self.columns + other_columns, rows)

    def equi_join(
        self,
        other: "Table",
        left_column: str,
        right_column: str,
        *,
        name: Optional[str] = None,
    ) -> "Table":
        """Hash equi-join on one column pair."""
        left_idx = self.column_index(left_column)
        right_idx = other.column_index(right_column)
        index: Dict[Scalar, List[Row]] = {}
        for row in other.rows:
            index.setdefault(row[right_idx], []).append(row)
        other_columns = [
            c if c not in self.columns else f"{other.name}.{c}" for c in other.columns
        ]
        rows = [
            left + right
            for left in self.rows
            for right in index.get(left[left_idx], [])
        ]
        return Table(name or f"{self.name}_join_{other.name}", self.columns + other_columns, rows)

    def union(self, other: "Table", *, name: Optional[str] = None) -> "Table":
        """Bag union of two tables with identical arity."""
        if self.arity != other.arity:
            raise TableError("union requires tables of the same arity")
        return Table(name or f"{self.name}_union", list(self.columns), self.rows + other.rows)

    def order_by(self, column: str, *, descending: bool = False, name: Optional[str] = None) -> "Table":
        """Rows sorted by one column (None sorts first)."""
        idx = self.column_index(column)
        ordered = sorted(
            self.rows,
            key=lambda row: (row[idx] is not None, str(row[idx])),
            reverse=descending,
        )
        return Table(name or self.name, list(self.columns), ordered)

    def group_count(self, column: str) -> Dict[Scalar, int]:
        """Value frequencies of one column (a tiny GROUP BY ... COUNT(*))."""
        counts: Dict[Scalar, int] = {}
        for value in self.column_values(column):
            counts[value] = counts.get(value, 0) + 1
        return counts

    # ------------------------------------------------------------------ I/O
    def to_csv(self) -> str:
        """Render the table as CSV text (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, name: str, text: str) -> "Table":
        """Parse CSV text produced by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        lines = list(reader)
        if not lines:
            raise TableError("empty CSV input")
        header, data = lines[0], lines[1:]
        return cls(name, header, [tuple(row) for row in data])

    @classmethod
    def from_rows(cls, name: str, columns: Sequence[str], rows: Iterable[Sequence[Scalar]]) -> "Table":
        """Build a table from an iterable of row sequences."""
        return cls(name, list(columns), [tuple(r) for r in rows])

    def pretty(self, max_rows: int = 20) -> str:
        """ASCII rendering for docs and examples."""
        widths = [len(c) for c in self.columns]
        shown = self.rows[:max_rows]
        for row in shown:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(str(value)))
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        divider = "-+-".join("-" * w for w in widths)
        lines = [header, divider]
        for row in shown:
            lines.append(" | ".join(str(v).ljust(widths[i]) for i, v in enumerate(row)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)
