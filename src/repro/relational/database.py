"""An in-memory relational database with constraint enforcement.

The migration experiments of the paper (Table 2) load the synthesized
programs' output into a full relational database and rely on primary- and
foreign-key constraints being respected.  This class provides that substrate:

* one :class:`~repro.relational.table.Table` per :class:`TableSchema`,
* insertion with primary-key uniqueness, NOT NULL and type checks,
* referential-integrity validation of foreign keys,
* simple lookup helpers and SQL/CSV export hooks used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..hdt.node import Scalar
from .schema import DatabaseSchema, SchemaError, TableSchema
from .table import Row, Table, TableError


class IntegrityError(Exception):
    """Raised when an insert or validation violates a database constraint."""


@dataclass
class Database:
    """An in-memory database instance conforming to a :class:`DatabaseSchema`."""

    schema: DatabaseSchema
    tables: Dict[str, Table] = field(default_factory=dict)
    _primary_keys: Dict[str, Set[Scalar]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for table_schema in self.schema.tables:
            if table_schema.name not in self.tables:
                self.tables[table_schema.name] = Table(
                    table_schema.name, table_schema.column_names, []
                )
            self._primary_keys.setdefault(table_schema.name, set())
            existing = self.tables[table_schema.name]
            if table_schema.primary_key is not None:
                idx = existing.column_index(table_schema.primary_key)
                self._primary_keys[table_schema.name] = {r[idx] for r in existing.rows}

    # --------------------------------------------------------------- insert
    def insert(self, table_name: str, row: Sequence[Scalar]) -> None:
        """Insert one row, enforcing arity, types, NOT NULL and primary key."""
        table_schema = self.schema.table(table_name)
        table = self.tables[table_name]
        values = tuple(row)
        if len(values) != table_schema.arity:
            raise IntegrityError(
                f"row arity {len(values)} does not match table {table_name!r} "
                f"({table_schema.arity} columns)"
            )
        for column, value in zip(table_schema.columns, values):
            if value is None:
                if not column.nullable or column.name == table_schema.primary_key:
                    raise IntegrityError(
                        f"NULL value for non-nullable column {table_name}.{column.name}"
                    )
                continue
            if column.dtype == "integer" and not isinstance(value, (int, bool)):
                if not (isinstance(value, float) and value.is_integer()):
                    if not _looks_like_int(value):
                        raise IntegrityError(
                            f"non-integer value {value!r} for column {table_name}.{column.name}"
                        )
            if column.dtype == "real" and not isinstance(value, (int, float)):
                if not _looks_like_float(value):
                    raise IntegrityError(
                        f"non-numeric value {value!r} for column {table_name}.{column.name}"
                    )
        if table_schema.primary_key is not None:
            pk_index = table.column_index(table_schema.primary_key)
            pk_value = values[pk_index]
            if pk_value in self._primary_keys[table_name]:
                raise IntegrityError(
                    f"duplicate primary key {pk_value!r} in table {table_name!r}"
                )
            self._primary_keys[table_name].add(pk_value)
        table.insert(values)

    def insert_many(self, table_name: str, rows: Iterable[Sequence[Scalar]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    # -------------------------------------------------------------- queries
    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise TableError(f"unknown table {name!r}")
        return self.tables[name]

    def row_count(self, name: Optional[str] = None) -> int:
        """Rows of one table, or of the whole database when ``name`` is None."""
        if name is not None:
            return len(self.table(name))
        return sum(len(t) for t in self.tables.values())

    def lookup(self, table_name: str, column: str, value: Scalar) -> List[Row]:
        """All rows of a table whose ``column`` equals ``value``."""
        table = self.table(table_name)
        idx = table.column_index(column)
        return [row for row in table.rows if row[idx] == value]

    # ----------------------------------------------------------- validation
    def validate_foreign_keys(self) -> List[str]:
        """Check referential integrity; return a list of violation messages."""
        violations: List[str] = []
        for table_schema in self.schema.tables:
            table = self.tables[table_schema.name]
            for fk in table_schema.foreign_keys:
                source_idx = table.column_index(fk.column)
                target_table = self.tables[fk.target_table]
                target_idx = target_table.column_index(fk.target_column)
                targets = {row[target_idx] for row in target_table.rows}
                for row in table.rows:
                    value = row[source_idx]
                    if value is None:
                        continue
                    if value not in targets:
                        violations.append(
                            f"{table_schema.name}.{fk.column}={value!r} has no match in "
                            f"{fk.target_table}.{fk.target_column}"
                        )
        return violations

    def validate(self) -> None:
        """Raise :class:`IntegrityError` if any foreign-key constraint is violated."""
        violations = self.validate_foreign_keys()
        if violations:
            preview = "; ".join(violations[:5])
            raise IntegrityError(
                f"{len(violations)} foreign-key violations (first: {preview})"
            )

    # ------------------------------------------------------------------ I/O
    def summary(self) -> Dict[str, int]:
        """Row counts per table (used by the Table 2 harness)."""
        return {name: len(table) for name, table in self.tables.items()}

    def to_csv_files(self) -> Dict[str, str]:
        """Render every table as CSV text, keyed by table name."""
        return {name: table.to_csv() for name, table in self.tables.items()}


def _looks_like_int(value: Scalar) -> bool:
    try:
        int(str(value))
        return True
    except (TypeError, ValueError):
        return False


def _looks_like_float(value: Scalar) -> bool:
    try:
        float(str(value))
        return True
    except (TypeError, ValueError):
        return False
