"""Regenerate Table 1 (the 98-task StackOverflow evaluation).

Run with ``python examples/run_table1.py [limit]`` — pass a limit to run a subset.
"""

import sys

from repro.evaluation import run_table1

limit = int(sys.argv[1]) if len(sys.argv) > 1 else None
report = run_table1(limit=limit)
print(report.render())
