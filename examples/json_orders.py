"""Shredding nested JSON orders into line items, then generating JavaScript.

Run with ``python examples/json_orders.py``.
"""

from repro import json_to_hdt, synthesize
from repro.codegen import count_program_loc, generate_javascript
from repro.dsl import pretty_program
from repro.optimizer import execute

document = {
    "orders": [
        {
            "order_id": "o-100",
            "customer": "northwind",
            "items": [
                {"sku": "kb-01", "qty": 2, "price": 49.0},
                {"sku": "ms-07", "qty": 1, "price": 25.5},
            ],
        },
        {
            "order_id": "o-101",
            "customer": "acme",
            "items": [{"sku": "mon-4k", "qty": 3, "price": 310.0}],
        },
    ]
}
rows = [
    ("o-100", "kb-01", 2),
    ("o-100", "ms-07", 1),
    ("o-101", "mon-4k", 3),
]

tree = json_to_hdt(document)
result = synthesize([(tree, rows)], name="orders")
print(pretty_program(result.program))
print("rows:", execute(result.program, tree))

js = generate_javascript(result.program)
print("JavaScript program:", count_program_loc(js), "LOC")
print("\n".join(js.splitlines()[-20:-12]))
