"""Regenerate Table 2 (migration of the four datasets to full databases).

Run with ``python examples/run_table2.py [scale]`` (default scale 6).
"""

import sys

from repro.evaluation import run_table2

scale = int(sys.argv[1]) if len(sys.argv) > 1 else 6
print(run_table2(scale=scale).render())
