"""Migrate a (synthetic) DBLP document to a full relational database (Table 2 scenario).

Run with ``python examples/dblp_to_database.py``.
"""

from repro.codegen import generate_sql_dump
from repro.datasets import dblp
from repro.migration import MigrationEngine

bundle = dblp.dataset(scale=5)
print(f"{bundle.name}: {bundle.num_tables} tables, {bundle.num_columns} columns")

engine = MigrationEngine()
result = engine.migrate(bundle.migration_spec(), bundle.generate(5))

print(f"synthesis: {result.synthesis_time:.1f}s  execution: {result.execution_time:.2f}s")
print("rows per table:")
for table, count in result.per_table_rows.items():
    print(f"  {table:22} {count}")
print("foreign-key violations:", len(result.database.validate_foreign_keys()))

sql = generate_sql_dump(result.database)
print("\nSQL dump preview:")
print("\n".join(sql.splitlines()[:12]))
