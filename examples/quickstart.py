"""Quickstart: synthesize a tree-to-table program from one small example.

Run with ``python examples/quickstart.py``.
"""

from repro import json_to_hdt, synthesize
from repro.codegen import generate_python
from repro.dsl import pretty_program
from repro.optimizer import execute

# 1. A small JSON document and the table we want out of it.
document = {
    "employees": [
        {"name": "Ada Chen", "team": "storage", "level": 4},
        {"name": "Brian Okafor", "team": "query", "level": 3},
        {"name": "Carla Rossi", "team": "storage", "level": 5},
    ]
}
desired_rows = [("Ada Chen", "storage"), ("Brian Okafor", "query"), ("Carla Rossi", "storage")]

# 2. Synthesize the transformation program (programming-by-example).
tree = json_to_hdt(document)
result = synthesize([(tree, desired_rows)], name="quickstart")
print("synthesized in", round(result.synthesis_time, 2), "seconds")
print(pretty_program(result.program))

# 3. Run it (on this or any larger document with the same shape).
print("\nrows:")
for row in execute(result.program, tree):
    print(" ", row)

# 4. Emit standalone code.
print("\ngenerated Python program (first lines):")
print("\n".join(generate_python(result.program).splitlines()[:5]))
