"""Learn once, run many: the migration runtime on the DBLP simulator.

Synthesizes a migration plan from the DBLP example, saves it to JSON,
reloads it, and executes it — whole-tree into SQLite, then streaming with
bounded memory — without ever invoking the synthesizer again.

Run with ``python examples/plan_runtime.py``.
"""

import os
import tempfile

from repro.datasets import dblp
from repro.runtime import (
    MigrationPlan,
    SQLiteBackend,
    execute_plan,
    iter_tree_chunks,
    stream_execute,
)

bundle = dblp.dataset(scale=5)

print("learning the migration plan (synthesis, pay once)...")
plan = MigrationPlan.learn(bundle.migration_spec())

workdir = tempfile.mkdtemp(prefix="repro-runtime-")
plan_path = os.path.join(workdir, "dblp.plan.json")
plan.save(plan_path)
print(f"plan saved to {plan_path} ({os.path.getsize(plan_path)} bytes)")

# --- later / elsewhere: reload and execute, no synthesis -------------------
plan = MigrationPlan.load(plan_path)

db_path = os.path.join(workdir, "dblp.db")
backend = SQLiteBackend(db_path)
report = execute_plan(plan, bundle.generate(5), backend)
print(f"\nwhole-tree into SQLite: {report.total_rows} rows "
      f"in {report.execution_time:.2f}s -> {db_path}")
for table, count in report.per_table_rows.items():
    print(f"  {table:24} {count}")
backend.close()

# --- streaming: bounded memory, chunk by chunk -----------------------------
# The full plan streams too — the author link tables join on position
# *values*, which the fused-dedup executor runs in linear time.  (A partial
# migration is still available via plan.restrict([...]) when needed.)
document = bundle.generate(400)  # 2000 records
streamed = stream_execute(plan, iter_tree_chunks(document, 250))
print(f"\nstreaming {len(document.root.children)} records in "
      f"{streamed.chunks} chunks: {streamed.total_rows} rows "
      f"in {streamed.execution_time:.2f}s")
