"""The paper's motivating example (Section 2): friendship XML -> relational table.

Run with ``python examples/social_network.py``.
"""

from repro import xml_to_hdt, synthesize
from repro.codegen import count_program_loc, generate_xslt
from repro.dsl import pretty_program
from repro.evaluation import social_network_document
from repro.optimizer import execute

XML = """
<root>
  <Person id="1"><name>Alice</name>
    <Friendship><Friend><fid>2</fid><years>3</years></Friend><Friend><fid>3</fid><years>5</years></Friend></Friendship>
  </Person>
  <Person id="2"><name>Bob</name>
    <Friendship><Friend><fid>1</fid><years>3</years></Friend></Friendship>
  </Person>
  <Person id="3"><name>Carol</name>
    <Friendship><Friend><fid>1</fid><years>5</years></Friend></Friendship>
  </Person>
</root>
"""

tree = xml_to_hdt(XML)
rows = [("Alice", "Bob", 3), ("Alice", "Carol", 5), ("Bob", "Alice", 3), ("Carol", "Alice", 5)]
result = synthesize([(tree, rows)], name="social-network")
print("synthesized in", round(result.synthesis_time, 2), "s,",
      result.num_atomic_predicates, "atomic predicates")
print(pretty_program(result.program))
print("\nrows on the example document:", sorted(set(execute(result.program, tree))))

# Apply the same program to a much larger generated document (the §7.1 scenario).
big = social_network_document(2000)
print("\nlarge document:", big.size(), "nodes ->", len(execute(result.program, big)), "rows")

xslt = generate_xslt(result.program)
print("\nXSLT program:", count_program_loc(xslt), "LOC")
