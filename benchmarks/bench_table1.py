"""Benchmark E1: Table 1 — the 98-task StackOverflow-style synthesis suite.

Standalone CLI (also reachable as ``bench_synthesis.py --suite table1``).
Every task runs through up to three engines:

* **vectorized** — a cold default-config run, with the per-phase wall-clock
  breakdown (universe construction / bitmatrix evaluation / pair cover)
  taken from :class:`~repro.synthesis.synthesizer.SynthesisStats`;
* **warm** — a second vectorized run seeded from the first run's serialized
  :class:`~repro.synthesis.context.SynthesisContext` (the single-task
  analogue of ``repro learn --incremental``), required to be identical;
* **seed** — the eager reference algorithms, run only on tasks whose
  vectorized time is within ``--seed-budget`` seconds (skips are counted
  and reported — no silent truncation), also required to be identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_table1.py                  # full suite
    PYTHONPATH=src python benchmarks/bench_table1.py --only 'xml_sensors_5c*'
    PYTHONPATH=src python benchmarks/bench_table1.py --jobs 4         # parallel ψ stage

The full run writes ``BENCH_TABLE1.json`` at the repository root; a
``--only`` subset prints its records without touching the committed file
unless ``--output`` is given explicitly.  ``--jobs`` fans each task's
candidate table extractors out over worker processes — the learned programs
are byte-identical to serial by construction (see ``docs/synthesis.md``).
"""

import argparse
import fnmatch
import hashlib
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.benchmarks_suite import load_suite  # noqa: E402
from repro.dsl.cost import program_cost  # noqa: E402
from repro.dsl.pretty import pretty_program  # noqa: E402
from repro.synthesis import ExamplePair, SynthesisTask, Synthesizer  # noqa: E402
from repro.synthesis.config import DEFAULT_CONFIG  # noqa: E402
from repro.synthesis.serialize import context_dumps, context_loads  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
TABLE1_RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_TABLE1.json")

PHASES = ("universe", "bitmatrix", "cover")

# --tail-gate: the predicate-learning tail-regression guard (CI synth-smoke).
# Before the candidate-level caching work this task took ~80 s; the budget
# is set an order of magnitude above today's time but an order of magnitude
# below the old one, so only a genuine tail regression trips it.  The
# fingerprint pins the learned program text + θ-cost — any drift in the
# cover solver or candidate ordering shows up as a mismatch, not a silent
# re-baseline.
TAIL_GATE_TASK = "xml_sensors_5c_v3"
TAIL_GATE_BUDGET_SECONDS = 20.0
TAIL_GATE_FINGERPRINT = (
    "fd510113acf93cc83649aeddcb87bc6b3b51d92b7c78602ccdb900f769cd90a6"
)


def _fingerprint(result):
    digest = hashlib.sha256()
    for part in _signature(result):
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _signature(result):
    if not result.success or result.program is None:
        return ("unsolved",)
    return (pretty_program(result.program), program_cost(result.program))


def _phases_of(result):
    stats = result.stats
    if stats is None:
        return {name: 0.0 for name in PHASES}
    return {
        "universe": round(stats.universe_seconds, 4),
        "bitmatrix": round(stats.bitmatrix_seconds, 4),
        "cover": round(stats.cover_seconds, 4),
    }


def run_suite(seed_budget, only=None, jobs=1, output=TABLE1_RECORD_PATH):
    """Run the Table 1 suite; returns the process exit code."""
    config = DEFAULT_CONFIG
    seed_config = config.seed_variant()
    tasks = load_suite()
    if only:
        tasks = [t for t in tasks if fnmatch.fnmatch(t.name, only)]
        if not tasks:
            print(f"no task matches --only {only!r}")
            return 1
    print(
        f"table1 suite: {len(tasks)} tasks, seed budget {seed_budget}s/task"
        + (f", jobs={jobs}" if jobs != 1 else "")
    )

    records = []
    mismatches = []
    seed_skipped = 0
    seed_truncated = 0
    for task in tasks:
        synthesis_task = SynthesisTask(
            examples=[ExamplePair(task.tree, [tuple(r) for r in task.rows])],
            name=task.name,
        )
        cold_synthesizer = Synthesizer(config, jobs=jobs)
        start = time.perf_counter()
        cold = cold_synthesizer.synthesize(synthesis_task)
        cold_seconds = time.perf_counter() - start

        # Warm: serialize the cold run's context, rehydrate, re-synthesize —
        # the single-task analogue of a --incremental re-learn.
        payload = context_dumps(cold_synthesizer.context, indent=0)
        start = time.perf_counter()
        warm_context = context_loads(payload, [task.tree])
        warm = Synthesizer(config, context=warm_context, jobs=jobs).synthesize(
            synthesis_task
        )
        warm_seconds = time.perf_counter() - start
        if _signature(warm) != _signature(cold):
            mismatches.append(f"{task.name}: warm != cold")

        seed_seconds = None
        if cold_seconds <= seed_budget:
            start = time.perf_counter()
            seed = Synthesizer(seed_config).synthesize(synthesis_task)
            seed_seconds = time.perf_counter() - start
            if _signature(seed) != _signature(cold):
                if seed_seconds >= seed_config.timeout_seconds:
                    # The seed engine's search was cut off by its wall-clock
                    # timeout before reaching the vectorized winner — a speed
                    # difference, not an identity violation.  Counted, never
                    # silently ignored.
                    seed_truncated += 1
                else:
                    mismatches.append(f"{task.name}: seed != vectorized")
        else:
            seed_skipped += 1

        records.append(
            {
                "task": task.name,
                "format": task.format,
                "columns": task.num_columns,
                "solved": cold.success,
                "candidates_tried": cold.candidates_tried,
                "vectorized_seconds": round(cold_seconds, 4),
                "warm_seconds": round(warm_seconds, 4),
                "seed_seconds": None if seed_seconds is None else round(seed_seconds, 4),
                "phases": _phases_of(cold),
            }
        )

    solved = sum(1 for r in records if r["solved"])
    seed_pairs = [
        (r["seed_seconds"], r["vectorized_seconds"])
        for r in records
        if r["seed_seconds"] is not None
    ]
    warm_ratio = statistics.median(
        r["warm_seconds"] / max(r["vectorized_seconds"], 1e-9) for r in records
    )
    phase_totals = {
        name: round(sum(r["phases"][name] for r in records), 2) for name in PHASES
    }
    summary = {
        "tasks": len(records),
        "solved": solved,
        "vectorized_total_seconds": round(sum(r["vectorized_seconds"] for r in records), 2),
        "warm_total_seconds": round(sum(r["warm_seconds"] for r in records), 2),
        "median_warm_over_cold": round(warm_ratio, 3),
        "phase_totals_seconds": phase_totals,
        "seed_tasks_run": len(seed_pairs),
        "seed_tasks_skipped_over_budget": seed_skipped,
        "seed_tasks_timeout_truncated": seed_truncated,
        "seed_total_seconds": round(sum(s for s, _ in seed_pairs), 2),
        "seed_median_speedup": round(
            statistics.median(s / max(v, 1e-9) for s, v in seed_pairs), 2
        )
        if seed_pairs
        else None,
        "mismatches": mismatches,
    }
    payload = {
        "benchmark": "synthesis_table1_suite",
        "engines": ["vectorized", "warm (rehydrated context)", "seed"],
        "seed_budget_seconds": seed_budget,
        "jobs": jobs,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "summary": summary,
        "tasks": records,
    }
    if only and output == TABLE1_RECORD_PATH:
        # A filtered run is a probe, not the committed record: print, don't
        # clobber.
        print(json.dumps(payload, indent=2))
        output = None
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    print(
        f"  solved {solved}/{len(records)}; vectorized "
        f"{summary['vectorized_total_seconds']}s "
        f"(universe {phase_totals['universe']}s, bitmatrix "
        f"{phase_totals['bitmatrix']}s, cover {phase_totals['cover']}s), "
        f"warm {summary['warm_total_seconds']}s "
        f"(median warm/cold {summary['median_warm_over_cold']}), seed on "
        f"{len(seed_pairs)} tasks ({seed_skipped} over budget), "
        f"median seed speedup {summary['seed_median_speedup']}x"
    )
    if output:
        print(f"wrote {output}")
    if mismatches:
        print(f"FAIL: {len(mismatches)} engine mismatches: {mismatches[:5]}")
        return 1
    return 0


def tail_gate():
    """CI guard for the predicate-learning tail; returns the exit code.

    Synthesizes :data:`TAIL_GATE_TASK` (a 5-column task from the slow tail
    of Table 1) cold with the default config, then again with ``jobs=2``,
    and fails if either run exceeds :data:`TAIL_GATE_BUDGET_SECONDS`,
    either program's fingerprint differs from the committed
    :data:`TAIL_GATE_FINGERPRINT`, or serial and parallel disagree.
    """
    task = next((t for t in load_suite() if t.name == TAIL_GATE_TASK), None)
    if task is None:
        print(f"TAIL GATE FAIL: task {TAIL_GATE_TASK!r} not in the suite")
        return 1
    synthesis_task = SynthesisTask(
        examples=[ExamplePair(task.tree, [tuple(r) for r in task.rows])],
        name=task.name,
    )
    failures = []
    fingerprints = {}
    for label, jobs in (("serial", 1), ("jobs=2", 2)):
        start = time.perf_counter()
        result = Synthesizer(DEFAULT_CONFIG, jobs=jobs).synthesize(synthesis_task)
        seconds = time.perf_counter() - start
        fingerprints[label] = _fingerprint(result)
        print(
            f"  {TAIL_GATE_TASK} [{label}]: {seconds:.2f}s, solved={result.success}, "
            f"fingerprint {fingerprints[label][:16]}…"
        )
        if seconds > TAIL_GATE_BUDGET_SECONDS:
            failures.append(
                f"{label} run took {seconds:.2f}s "
                f"(budget {TAIL_GATE_BUDGET_SECONDS:.0f}s)"
            )
        if fingerprints[label] != TAIL_GATE_FINGERPRINT:
            failures.append(
                f"{label} fingerprint {fingerprints[label]} != committed "
                f"{TAIL_GATE_FINGERPRINT}"
            )
    if fingerprints["serial"] != fingerprints["jobs=2"]:
        failures.append("serial and parallel programs differ")
    if failures:
        for failure in failures:
            print(f"TAIL GATE FAIL: {failure}")
        return 1
    print(
        f"tail gate ok: both runs within {TAIL_GATE_BUDGET_SECONDS:.0f}s, "
        "program matches the committed fingerprint"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        metavar="GLOB",
        help="run only tasks whose name matches this glob (e.g. 'xml_sensors_5c*'); "
        "filtered runs print their records instead of rewriting BENCH_TABLE1.json",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="candidate-level synthesis parallelism per task (0 = CPU count, "
        "default 1 = serial); programs are identical regardless",
    )
    parser.add_argument(
        "--seed-budget",
        type=float,
        default=2.0,
        help="run the seed engine only on tasks whose vectorized time is at "
        "most this many seconds (skips are reported; default 2.0)",
    )
    parser.add_argument(
        "--output",
        default=TABLE1_RECORD_PATH,
        help="where to write the JSON record (default: BENCH_TABLE1.json)",
    )
    parser.add_argument(
        "--tail-gate",
        action="store_true",
        help="CI guard: synthesize the pinned 5-column tail task serially and "
        f"with jobs=2, each within {TAIL_GATE_BUDGET_SECONDS:.0f}s and matching "
        "the committed program fingerprint",
    )
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0 (got {args.jobs})")
    if args.tail_gate:
        return tail_gate()
    return run_suite(args.seed_budget, only=args.only, jobs=args.jobs, output=args.output)


if __name__ == "__main__":
    raise SystemExit(main())
