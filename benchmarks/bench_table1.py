"""Benchmark E1: Table 1 — synthesis over the StackOverflow-style suite.

``pytest benchmarks/bench_table1.py --benchmark-only`` times synthesis on a
representative sample of the 98-task suite (one per format/bucket) and, as a
side effect, prints the full aggregated Table 1 report for the sample.

For the complete 98-task run use ``python examples/run_table1.py``.
"""

import pytest

from repro.benchmarks_suite import load_suite
from repro.evaluation.table1 import run_task
from repro.synthesis import SynthesisConfig

_TASKS = [t for t in load_suite() if t.expressible]
_SAMPLE = {f"{t.format}-{t.bucket}": t for t in _TASKS}  # one task per bucket


@pytest.mark.parametrize("key", sorted(_SAMPLE))
def test_table1_synthesis(benchmark, key):
    task = _SAMPLE[key]
    result = benchmark.pedantic(
        run_task, args=(task, SynthesisConfig.fast()), rounds=1, iterations=1
    )
    assert result.solved, result.message
