"""Benchmark E2: the bitset-vectorized synthesis engine — cross-PR perf record.

Learns the complete multi-table plans for the DBLP (9 tables), Mondial and
Yelp evaluation schemas twice — once with the seed learner (eager per-example
DFAs, tuple-by-tuple predicate evaluation, list-based solvers) and once with
the vectorized engine (lazy product DFA over the shared tree automaton,
predicate bitmatrices, bitmask ILP/QM) — verifies the learned programs are
**byte-identical** (same pretty-printed DSL, same θ-cost) on every table, and
writes a machine-readable record to ``BENCH_PR3.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_synthesis.py           # full record
    PYTHONPATH=src python benchmarks/bench_synthesis.py --smoke   # CI guard

``--smoke`` skips the slow seed-learner runs: it learns the multi-table DBLP
and Yelp plans with the vectorized engine, checks end-to-end synthesis
against a fixed wall-clock budget, and cross-checks DBLP byte-identity
against the seed learner (the one seed run cheap enough for CI).

``--suite table1`` extends the coverage beyond the three Table 2 schemas: it
runs the full 98-task StackOverflow-style suite (Table 1) through three
engines per task — vectorized, *warm* (a second vectorized run seeded from
the first run's serialized ``SynthesisContext``, the single-task analogue of
``repro learn --incremental``), and the seed algorithms.  Warm runs must be
identical to cold on every task; seed runs must be identical wherever they
execute (tasks whose vectorized time exceeds ``--seed-budget`` seconds skip
the seed engine, and the skip count is reported — no silent truncation).
Results land in ``BENCH_TABLE1.json``.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import dblp, mondial, yelp  # noqa: E402
from repro.dsl.cost import program_cost  # noqa: E402
from repro.dsl.pretty import pretty_program  # noqa: E402
from repro.migration.engine import MigrationEngine  # noqa: E402
from repro.synthesis.config import SynthesisConfig  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_PR3.json")
TABLE1_RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_TABLE1.json")

DATASETS = {"DBLP": dblp, "Mondial": mondial, "Yelp": yelp}

SMOKE_LIMIT_SECONDS = 20.0
SMOKE_DATASETS = ("DBLP", "Yelp")
MIN_REQUIRED_SPEEDUP = 3.0


def _learn(module, config, jobs=1):
    spec = module.dataset().migration_spec()
    start = time.perf_counter()
    programs, per_table = MigrationEngine(config, jobs=jobs).learn(spec)
    return programs, per_table, time.perf_counter() - start


def _identical(seed_programs, fast_programs):
    mismatches = []
    for name in seed_programs:
        seed_program = seed_programs[name].program
        fast_program = fast_programs[name].program
        if pretty_program(seed_program) != pretty_program(fast_program):
            mismatches.append(f"{name}: program text differs")
        elif program_cost(seed_program) != program_cost(fast_program):
            mismatches.append(f"{name}: θ-cost differs")
    return mismatches


def _bench_dataset(name, module):
    config = SynthesisConfig.for_migration()
    print(f"{name}:")
    fast_programs, fast_per_table, fast_seconds = _learn(module, config)
    print(f"  vectorized  {fast_seconds:>7.2f}s  ({len(fast_programs)} tables)")
    seed_programs, _, seed_seconds = _learn(module, config.seed_variant())
    print(f"  seed        {seed_seconds:>7.2f}s")
    mismatches = _identical(seed_programs, fast_programs)
    if mismatches:
        raise SystemExit(f"byte-identity FAILED for {name}: {mismatches}")
    speedup = seed_seconds / max(fast_seconds, 1e-9)
    print(f"  speedup     {speedup:>7.2f}x  byte-identical: yes")
    return {
        "tables": len(fast_programs),
        "seed_seconds": round(seed_seconds, 3),
        "vectorized_seconds": round(fast_seconds, 3),
        "speedup": round(speedup, 2),
        "byte_identical": True,
        "per_table_vectorized_seconds": {
            table: round(seconds, 4) for table, seconds in fast_per_table.items()
        },
    }


def _smoke():
    budget_ok = True
    for name in SMOKE_DATASETS:
        _, _, seconds = _learn(DATASETS[name], SynthesisConfig.for_migration())
        print(f"  {name}: vectorized multi-table synthesis in {seconds:.2f}s")
        if seconds >= SMOKE_LIMIT_SECONDS:
            print(
                f"SMOKE FAIL: {name} synthesis took {seconds:.1f}s "
                f"(budget {SMOKE_LIMIT_SECONDS:.0f}s)"
            )
            budget_ok = False
    config = SynthesisConfig.for_migration()
    fast_programs, _, _ = _learn(dblp, config)
    seed_programs, _, _ = _learn(dblp, config.seed_variant())
    mismatches = _identical(seed_programs, fast_programs)
    if mismatches:
        print(f"SMOKE FAIL: DBLP byte-identity: {mismatches}")
        return 1
    print("  DBLP byte-identity vs seed learner: ok")
    if not budget_ok:
        return 1
    print(f"smoke ok: all within {SMOKE_LIMIT_SECONDS:.0f}s, programs identical")
    return 0


def _suite_table1(seed_budget):
    """Run the 98 Table 1 tasks through vectorized / warm / seed engines.

    The implementation lives in ``benchmarks/bench_table1.py`` (which also
    offers ``--only`` filtering, ``--jobs`` and the per-phase timing
    breakdown); this flag is kept as the historical entry point.
    """
    from bench_table1 import run_suite

    return run_suite(seed_budget)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI guard: vectorized synthesis under {SMOKE_LIMIT_SECONDS:.0f}s, "
        "DBLP programs byte-identical to the seed learner",
    )
    parser.add_argument(
        "--suite",
        choices=["table1"],
        help="run the 98-task Table 1 suite (vectorized vs warm-context vs seed) "
        "instead of the Table 2 schemas",
    )
    parser.add_argument(
        "--seed-budget",
        type=float,
        default=2.0,
        help="with --suite: run the seed engine only on tasks whose vectorized "
        "time is at most this many seconds (skips are reported; default 2.0)",
    )
    args = parser.parse_args(argv)

    if args.suite == "table1":
        return _suite_table1(args.seed_budget)
    if args.smoke:
        return _smoke()

    payload = {
        "benchmark": "synthesis",
        "pr": 3,
        "engines": {
            "seed": "eager DFA intersection + per-tuple predicate evaluation "
            "(SynthesisConfig(vectorized=False))",
            "vectorized": "lazy product DFA + predicate bitmatrices + bitmask "
            "ILP/QM + shared caches (default)",
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": {},
    }
    for name, module in DATASETS.items():
        payload["results"][name] = _bench_dataset(name, module)

    dblp_speedup = payload["results"]["DBLP"]["speedup"]
    payload["dblp_speedup"] = dblp_speedup
    with open(RECORD_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {RECORD_PATH} (DBLP end-to-end synthesis speedup: {dblp_speedup}x)")
    if dblp_speedup < MIN_REQUIRED_SPEEDUP:
        print(
            f"FAIL: DBLP speedup {dblp_speedup}x below the required "
            f"{MIN_REQUIRED_SPEEDUP}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
