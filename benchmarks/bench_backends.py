"""Benchmark E10: the backend grid and the streamed-batch memory profile.

Runs the full, unrestricted 9-table DBLP plan through every registered
backend — memory, sqlite, columnar (streamed *and* materialize-at-finalize)
and duckdb when installed — and writes a machine-readable record to
``BENCH_PR10.json`` at the repository root.  Every cell's output is verified
**canonically identical** (``canonical_table_rows``) to a whole-tree memory
reference before timing, so the record can never report a fast-but-wrong
run.

The record's ``streamed_batches`` section is the PR-10 claim in numbers:
``spill=True`` (stream each sealed batch to its file writer) vs
``spill=False`` (materialize all batches, write at finalize) over the same
rows must produce **byte-identical files**, while the streamed run's
peak traced allocation across the backend load path (tracemalloc — the
deterministic per-run proxy for peak RSS; ``ru_maxrss`` is recorded once
for the whole process) drops.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py           # full record
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke   # CI guard

``--smoke`` is the ``analytics-smoke`` CI guard: byte-identical
spill-vs-materialize output with reduced peak memory, plus — when duckdb is
installed — the SQL parity battery (COUNT / COUNT DISTINCT / FK dangle)
over a DuckDB target against the memory ground truth.
"""

import argparse
import gc
import json
import os
import resource
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import dblp  # noqa: E402
from repro.runtime import (  # noqa: E402
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    canonical_table_rows,
    execute_plan,
)
from repro.runtime.backends import (  # noqa: E402
    HAVE_DUCKDB,
    ColumnarBackend,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_PR10.json")

#: Small enough that the streamed path actually seals many batches per table
#: at benchmark scales (the default 8192 would hold whole small tables in
#: one open batch and hide the memory difference).
BATCH_SIZE = 512

SMOKE_SCALE = 200
SMOKE_LIMIT_SECONDS = 120.0


def _canonical(plan, backend):
    return canonical_table_rows(
        plan.schema, {t: backend.fetch_rows(t) for t in plan.schema.table_names}
    )


def _fresh_path(path):
    """Remove a file target from a previous timing round, if present."""
    if os.path.exists(path):
        os.remove(path)
    return path


def _directory_bytes(directory):
    return {
        name: open(os.path.join(directory, name), "rb").read()
        for name in sorted(os.listdir(directory))
    }


def _measure(label, make_backend, plan, document, reference, rounds=2):
    """Best-of-N wall clock; every round's output is checked before timing."""
    elapsed = None
    for _ in range(max(1, rounds)):
        backend = make_backend()
        start = time.perf_counter()
        report = execute_plan(plan, document, backend)
        duration = time.perf_counter() - start
        if _canonical(plan, backend) != reference:
            raise SystemExit(f"PARITY FAIL: {label} diverged from whole-tree output")
        backend.close()
        elapsed = duration if elapsed is None else min(elapsed, duration)
    result = {
        "rows": report.total_rows,
        "seconds": round(elapsed, 4),
        "rows_per_sec": round(report.total_rows / max(elapsed, 1e-9)),
    }
    print(
        f"  {label:28s} {result['rows']:>8d} rows  {result['seconds']:>8.2f}s  "
        f"{result['rows_per_sec']:>8d} rows/s"
    )
    return result


def _measure_peak(make_backend, plan, rows_by_table):
    """Peak traced allocation of the backend load path alone.

    The rows are pre-materialized *outside* the trace so tracemalloc sees
    only what the backend allocates between ``begin`` and ``finalize`` —
    the synthesis pipeline (column scans, merger hash indexes) is identical
    in both spill modes and would otherwise drown the batch buffers.
    """
    gc.collect()
    tracemalloc.start()
    backend = make_backend()
    backend.begin(plan.schema)
    for table_schema in plan.execution_order():
        backend.insert_rows(table_schema.name, iter(rows_by_table[table_schema.name]))
    backend.finalize()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    backend.close()
    return peak


def _streamed_batches_profile(plan, rows_by_table, workdir):
    """spill=True vs spill=False: byte-identical files, lower peak memory."""
    spill_dir = os.path.join(workdir, "columnar-spill")
    mat_dir = os.path.join(workdir, "columnar-materialize")
    spill_peak = _measure_peak(
        lambda: ColumnarBackend(spill_dir, batch_size=BATCH_SIZE, spill=True),
        plan,
        rows_by_table,
    )
    mat_peak = _measure_peak(
        lambda: ColumnarBackend(mat_dir, batch_size=BATCH_SIZE, spill=False),
        plan,
        rows_by_table,
    )
    identical = _directory_bytes(spill_dir) == _directory_bytes(mat_dir)
    profile = {
        "batch_size": BATCH_SIZE,
        "materialize_peak_traced_bytes": mat_peak,
        "spill_peak_traced_bytes": spill_peak,
        "peak_reduction": round(1.0 - spill_peak / max(mat_peak, 1), 3),
        "byte_identical_files": identical,
    }
    print(
        f"  streamed batches: peak {mat_peak / 1e6:.1f}MB -> {spill_peak / 1e6:.1f}MB "
        f"({profile['peak_reduction']:.0%} lower), "
        f"files byte-identical: {identical}"
    )
    return profile


def _duckdb_oracle(plan, document, memory_backend, path):
    """Load a DuckDB target and run the SQL parity battery against memory."""
    from repro.runtime.backends import DuckDBBackend

    backend = DuckDBBackend(path)
    execute_plan(plan, document, backend)
    failures = []
    for table in plan.schema.tables:
        rows = memory_backend.fetch_rows(table.name)
        count = backend.connection.execute(
            f'SELECT COUNT(*) FROM "{table.name}"'
        ).fetchone()[0]
        if count != len(rows):
            failures.append(f"{table.name}: COUNT(*) {count} != {len(rows)}")
        if table.primary_key is not None:
            pk = table.column_names.index(table.primary_key)
            distinct = backend.connection.execute(
                f'SELECT COUNT(DISTINCT "{table.primary_key}") FROM "{table.name}"'
            ).fetchone()[0]
            truth = len({r[pk] for r in rows if r[pk] is not None})
            if distinct != truth:
                failures.append(
                    f"{table.name}: COUNT(DISTINCT pk) {distinct} != {truth}"
                )
        for fk in table.foreign_keys:
            dangling = backend.connection.execute(
                f'SELECT COUNT(*) FROM "{table.name}" c '
                f'LEFT JOIN "{fk.target_table}" p '
                f'ON c."{fk.column}" = p."{fk.target_column}" '
                f'WHERE c."{fk.column}" IS NOT NULL '
                f'AND p."{fk.target_column}" IS NULL'
            ).fetchone()[0]
            if dangling:
                failures.append(
                    f"{table.name}.{fk.column}: {dangling} dangling FK value(s)"
                )
    backend.close()
    return failures


def _run_scale(plan, scale, workdir):
    document = dblp.dataset(scale=scale).generate(scale)
    records = len(document.root.children)
    print(f"scale {scale} ({records} records):")
    whole = execute_plan(plan, document, MemoryBackend())
    reference = _canonical(plan, whole.backend)
    scale_dir = os.path.join(workdir, f"scale-{scale}")
    os.makedirs(scale_dir, exist_ok=True)
    grid = {
        "memory": _measure("memory", MemoryBackend, plan, document, reference),
        "sqlite": _measure(
            "sqlite",
            lambda: SQLiteBackend(_fresh_path(os.path.join(scale_dir, "out.db"))),
            plan,
            document,
            reference,
        ),
        "columnar": _measure(
            "columnar (streamed)",
            lambda: ColumnarBackend(
                os.path.join(scale_dir, "columnar"), batch_size=BATCH_SIZE
            ),
            plan,
            document,
            reference,
        ),
    }
    if HAVE_DUCKDB:
        from repro.runtime.backends import DuckDBBackend

        grid["duckdb"] = _measure(
            "duckdb",
            lambda: DuckDBBackend(_fresh_path(os.path.join(scale_dir, "out.duckdb"))),
            plan,
            document,
            reference,
        )
    else:
        grid["duckdb"] = {"skipped": "duckdb not installed"}
        print("  duckdb                       skipped (not installed)")
    rows_by_table = {t: whole.backend.fetch_rows(t) for t in plan.schema.table_names}
    return {
        "records": records,
        "grid": grid,
        "streamed_batches": _streamed_batches_profile(plan, rows_by_table, scale_dir),
    }


def _smoke(plan, workdir):
    start = time.perf_counter()
    document = dblp.dataset(scale=SMOKE_SCALE).generate(SMOKE_SCALE)
    whole = execute_plan(plan, document, MemoryBackend())
    rows_by_table = {t: whole.backend.fetch_rows(t) for t in plan.schema.table_names}
    profile = _streamed_batches_profile(plan, rows_by_table, workdir)
    if not profile["byte_identical_files"]:
        print("SMOKE FAIL: spill=True and spill=False produced different files")
        return 1
    if profile["spill_peak_traced_bytes"] >= profile["materialize_peak_traced_bytes"]:
        print(
            "SMOKE FAIL: streamed execution did not reduce peak memory "
            f"({profile['spill_peak_traced_bytes']} >= "
            f"{profile['materialize_peak_traced_bytes']})"
        )
        return 1
    if HAVE_DUCKDB:
        failures = _duckdb_oracle(
            plan, document, whole.backend, os.path.join(workdir, "smoke.duckdb")
        )
        if failures:
            print("SMOKE FAIL: DuckDB SQL parity oracle diverged:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("  duckdb SQL parity oracle: ok")
    else:
        print("  duckdb SQL parity oracle: skipped (not installed)")
    elapsed = time.perf_counter() - start
    if elapsed >= SMOKE_LIMIT_SECONDS:
        print(
            f"SMOKE FAIL: analytics smoke took {elapsed:.1f}s "
            f"(limit {SMOKE_LIMIT_SECONDS:.0f}s)"
        )
        return 1
    print(
        f"smoke ok: streamed batches byte-identical with "
        f"{profile['peak_reduction']:.0%} lower peak memory at scale "
        f"{SMOKE_SCALE}, {elapsed:.1f}s < {SMOKE_LIMIT_SECONDS:.0f}s"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: byte-identical streamed output with lower peak memory "
        "(+ DuckDB SQL parity when installed)",
    )
    parser.add_argument("--scales", type=int, nargs="*", default=[500, 2000])
    args = parser.parse_args(argv)

    import tempfile

    print("learning the DBLP plan (synthesis, once)...")
    start = time.perf_counter()
    plan = MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())
    print(
        f"  learned in {time.perf_counter() - start:.1f}s "
        f"({len(plan.schema.tables)} tables)"
    )

    with tempfile.TemporaryDirectory(prefix="bench-backends-") as workdir:
        if args.smoke:
            return _smoke(plan, workdir)

        payload = {
            "benchmark": "backends",
            "pr": 10,
            "dataset": "DBLP",
            "plan": "full (9 tables, author link tables included)",
            "batch_size": BATCH_SIZE,
            "cpu_count": os.cpu_count(),
            "duckdb_installed": HAVE_DUCKDB,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "parity": "every cell verified canonically identical to whole-tree "
            "execution before timing",
            "results": {},
        }
        for scale in args.scales:
            payload["results"][str(scale)] = _run_scale(plan, scale, workdir)

    payload["ru_maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    with open(RECORD_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    largest = payload["results"][str(args.scales[-1])]["streamed_batches"]
    print(
        f"wrote {RECORD_PATH} (streamed batches: "
        f"{largest['peak_reduction']:.0%} lower peak, byte-identical: "
        f"{largest['byte_identical_files']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
