"""Benchmark E5: the sharded multi-process run path — cross-PR perf record.

Runs the **full, unrestricted** 9-table DBLP plan through
``shard_execute`` over a grid of shard counts (1/2/4) × backends
(memory/sqlite/columnar) × scales, and writes a machine-readable record to
``BENCH_PR5.json`` at the repository root.  Before any timing is recorded,
every cell's output is verified **canonically identical** (surrogate keys
renamed by first occurrence — ``canonical_table_rows``) to a whole-tree
reference execution, so the record can never report a fast-but-wrong run.

Shard fan-out only pays on multi-core machines: the record stores the
host's ``cpu_count`` next to the measured shards-4-vs-shards-1 speedup so
numbers from different runners compare honestly.  On a single-core host the
spill/reduce overhead makes the speedup ≈1× or below by construction.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded.py           # full record
    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke   # CI guard

``--smoke`` is the CI sharded-parity guard: a small scale, ``--shards 2``
(worker pool included) vs whole-tree execution, canonical equality asserted
and the whole check bounded by a 60 s budget.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import dblp  # noqa: E402
from repro.runtime import (  # noqa: E402
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    canonical_table_rows,
    execute_plan,
    shard_execute,
)
from repro.runtime.backends import ColumnarBackend  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_PR5.json")

CHUNK_SIZE = 500
SHARD_COUNTS = (1, 2, 4)
BACKENDS = {
    "memory": MemoryBackend,
    "sqlite": SQLiteBackend,
    "columnar": ColumnarBackend,
}
SMOKE_SCALE = 200
SMOKE_LIMIT_SECONDS = 60.0


def _canonical(plan, backend):
    return canonical_table_rows(
        plan.schema, {t: backend.fetch_rows(t) for t in plan.schema.table_names}
    )


def _measure(label, run, reference, plan, rounds=2):
    """Best-of-N wall clock; every round's output is checked before timing."""
    elapsed = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        report = run()
        duration = time.perf_counter() - start
        if _canonical(plan, report.backend) != reference:
            raise SystemExit(f"PARITY FAIL: {label} diverged from whole-tree output")
        elapsed = duration if elapsed is None else min(elapsed, duration)
    result = {
        "rows": report.total_rows,
        "seconds": round(elapsed, 4),
        "rows_per_sec": round(report.total_rows / max(elapsed, 1e-9)),
        "chunks": report.chunks,
        "shards": report.shards,
    }
    print(
        f"  {label:28s} {result['rows']:>8d} rows  {result['seconds']:>8.2f}s  "
        f"{result['rows_per_sec']:>8d} rows/s"
    )
    return result


def _run_scale(plan, scale):
    document = dblp.dataset(scale=scale).generate(scale)
    records = len(document.root.children)
    print(f"scale {scale} ({records} records):")
    whole = execute_plan(plan, document, MemoryBackend())
    reference = _canonical(plan, whole.backend)
    results = {
        "records": records,
        "whole_tree_memory_seconds": round(whole.execution_time, 4),
        "grid": {},
    }
    for backend_name, make_backend in BACKENDS.items():
        for shards in SHARD_COUNTS:
            label = f"shards={shards} {backend_name}"
            results["grid"][f"{backend_name}/shards{shards}"] = _measure(
                label,
                lambda mb=make_backend, s=shards: shard_execute(
                    plan, document, mb(), shards=s, chunk_size=CHUNK_SIZE
                ),
                reference,
                plan,
            )
    truth = dblp.ground_truth_counts(scale)
    expected = sum(truth.values())
    for name, cell in results["grid"].items():
        if cell["rows"] != expected:
            raise SystemExit(
                f"row count mismatch at scale {scale}/{name}: "
                f"{cell['rows']} != {expected}"
            )
    return results


def _smoke(plan):
    start = time.perf_counter()
    document = dblp.dataset(scale=SMOKE_SCALE).generate(SMOKE_SCALE)
    whole = execute_plan(plan, document, MemoryBackend())
    reference = _canonical(plan, whole.backend)
    report = shard_execute(plan, document, shards=2, chunk_size=CHUNK_SIZE)
    if _canonical(plan, report.backend) != reference:
        print("SMOKE FAIL: --shards 2 output diverged from whole-tree execution")
        return 1
    elapsed = time.perf_counter() - start
    if elapsed >= SMOKE_LIMIT_SECONDS:
        print(
            f"SMOKE FAIL: sharded parity check took {elapsed:.1f}s "
            f"(limit {SMOKE_LIMIT_SECONDS:.0f}s)"
        )
        return 1
    print(
        f"smoke ok: shards=2 canonically identical to whole-tree at scale "
        f"{SMOKE_SCALE} ({report.total_rows} rows), {elapsed:.1f}s "
        f"< {SMOKE_LIMIT_SECONDS:.0f}s"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI guard: --shards 2 vs whole-tree parity at scale {SMOKE_SCALE}, "
        f"< {SMOKE_LIMIT_SECONDS:.0f}s",
    )
    parser.add_argument("--scales", type=int, nargs="*", default=[500, 2000])
    args = parser.parse_args(argv)

    print("learning the DBLP plan (synthesis, once)...")
    start = time.perf_counter()
    plan = MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())
    print(
        f"  learned in {time.perf_counter() - start:.1f}s "
        f"({len(plan.schema.tables)} tables)"
    )

    if args.smoke:
        return _smoke(plan)

    payload = {
        "benchmark": "sharded-executor",
        "pr": 5,
        "dataset": "DBLP",
        "plan": "full (9 tables, author link tables included)",
        "chunk_size": CHUNK_SIZE,
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "parity": "every cell verified canonically identical to whole-tree "
        "execution before timing",
        "results": {},
    }
    for scale in args.scales:
        payload["results"][str(scale)] = _run_scale(plan, scale)

    reference = payload["results"].get(
        "2000", next(iter(payload["results"].values()))
    )
    shard1 = reference["grid"]["memory/shards1"]["seconds"]
    shard4 = reference["grid"]["memory/shards4"]["seconds"]
    payload["speedup_shards4_vs_shards1"] = round(shard1 / max(shard4, 1e-9), 2)
    payload["note"] = (
        "shard fan-out pays with multiple cores; interpret the speedup "
        "together with cpu_count"
    )
    with open(RECORD_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {RECORD_PATH} (shards4 vs shards1 on memory: "
        f"{payload['speedup_shards4_vs_shards1']}x on {payload['cpu_count']} core(s))"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
