"""Benchmark E3: §7.1 performance paragraph — executing synthesized programs at scale."""

import pytest

from repro.evaluation.scalability import (
    example_social_network,
    social_network_document,
)
from repro.optimizer import execute
from repro.codegen import compile_program
from repro.synthesis import SynthesisConfig, Synthesizer

_PROGRAM = Synthesizer(SynthesisConfig.for_migration()).synthesize(example_social_network()).program


@pytest.mark.parametrize("persons", [200, 1000, 4000])
def test_optimized_execution_scales(benchmark, persons):
    document = social_network_document(persons)
    rows = benchmark.pedantic(execute, args=(_PROGRAM, document), rounds=1, iterations=1)
    assert len(rows) >= persons


def test_generated_python_execution(benchmark):
    from repro.evaluation.scalability import _to_generated_nodes

    transform = compile_program(_PROGRAM)
    document = _to_generated_nodes(social_network_document(1000))
    rows = benchmark.pedantic(transform, args=(document,), rounds=1, iterations=1)
    assert len(rows) >= 1000
