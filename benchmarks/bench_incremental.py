"""Benchmark E3: incremental synthesis across spec edits — cross-PR perf record.

Simulates the interactive schema-design loop on the three Table 2 evaluation
schemas (DBLP, Mondial, Yelp).  For each dataset:

1. **cold** — a full vectorized multi-table learn (the PR 3 engine), timed;
2. **add-one-table** — the spec minus one (unreferenced) table is learned
   into a fresh :class:`~repro.runtime.context_store.ContextStore`, then the
   *full* spec is learned incrementally: the diff layer reuses every cached
   table program and only the added table is synthesized, seeded from the
   persisted ``SynthesisContext``;
3. **add-one-column** — same loop, with one data column removed from a table
   instead: the edited table re-synthesizes, every other table's program is
   reused (referrers re-learn only their cheap key rules).

Each warm plan is verified **byte-identical** to the cold plan (identical
JSON bodies — programs, data columns and key rules), and each warm learn
must be at least ``MIN_REQUIRED_SPEEDUP``× faster than cold.  Results land
in ``BENCH_PR4.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py           # full record
    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke   # CI guard

``--smoke`` runs the DBLP add-one-column loop only and asserts the
incremental-reuse contract: the second learn must skip every unaffected
table and reproduce the cold plan exactly.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import dblp, mondial, yelp  # noqa: E402
from repro.migration.engine import MigrationSpec, TableExampleSpec  # noqa: E402
from repro.relational.schema import DatabaseSchema, ForeignKey, TableSchema  # noqa: E402
from repro.runtime import ContextStore, MigrationPlan, learn_incremental  # noqa: E402
from repro.synthesis.config import SynthesisConfig  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_PR4.json")

DATASETS = {"DBLP": dblp, "Mondial": mondial, "Yelp": yelp}
MIN_REQUIRED_SPEEDUP = 3.0
SMOKE_LIMIT_SECONDS = 20.0


# --------------------------------------------------------------------------- #
# Spec editing (single-edit generators, mirroring tests/test_incremental.py)
# --------------------------------------------------------------------------- #


def _copy_table(table, *, drop=None):
    return TableSchema(
        name=table.name,
        columns=[c for c in table.columns if c.name != drop],
        primary_key=table.primary_key,
        foreign_keys=[
            ForeignKey(fk.column, fk.target_table, fk.target_column)
            for fk in table.foreign_keys
        ],
        natural_keys=table.natural_keys,
    )


def _rebuild(spec, tables, examples):
    return MigrationSpec(
        schema=DatabaseSchema(name=spec.schema.name, tables=tables),
        example_tree=spec.example_tree,
        table_examples=[
            TableExampleSpec(table=t.name, rows=[tuple(r) for r in examples[t.name]])
            for t in tables
        ],
    )


def _examples_of(spec):
    return {e.table: [tuple(r) for r in e.rows] for e in spec.table_examples}


def drop_table(spec, victim):
    tables = [_copy_table(t) for t in spec.schema.tables if t.name != victim]
    return _rebuild(spec, tables, _examples_of(spec))


def drop_column(spec, table_name, column):
    examples = _examples_of(spec)
    tables = []
    for t in spec.schema.tables:
        if t.name != table_name:
            tables.append(_copy_table(t))
            continue
        index = t.column_names.index(column)
        tables.append(_copy_table(t, drop=column))
        examples[table_name] = [
            tuple(v for i, v in enumerate(row) if i != index)
            for row in examples[table_name]
        ]
    return _rebuild(spec, tables, examples)


def pick_removable_table(spec):
    """The costliest-looking table nothing references (last in topo order)."""
    referenced = {fk.target_table for t in spec.schema.tables for fk in t.foreign_keys}
    removable = [t.name for t in spec.schema.topological_order() if t.name not in referenced]
    return removable[-1]


def pick_droppable_column(spec):
    """A (table, data column) pair whose removal keeps the schema valid."""
    referenced = {
        (fk.target_table, fk.target_column)
        for t in spec.schema.tables
        for fk in t.foreign_keys
    }
    for t in spec.schema.topological_order():
        fk_columns = {fk.column for fk in t.foreign_keys}
        data = t.data_columns()
        if len(data) < 2:
            continue
        for c in reversed(data):
            if c == t.primary_key or c in fk_columns or (t.name, c) in referenced:
                continue
            return t.name, c
    raise SystemExit("no droppable column found")


def plan_body(plan):
    """The plan minus provenance metadata — the byte-identity comparand."""
    return json.dumps(
        {k: v for k, v in plan.to_json().items() if k != "metadata"}, sort_keys=True
    )


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #


def _warm_learn(full_spec, base_spec, config):
    """Prime a fresh store with the base spec, then time the edited learn."""
    directory = tempfile.mkdtemp(prefix="repro-bench-ctx-")
    try:
        store = ContextStore(directory)
        learn_incremental(base_spec, store, config=config)
        start = time.perf_counter()
        plan, report = learn_incremental(full_spec, store, config=config)
        return plan, report, time.perf_counter() - start
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _bench_dataset(name, module):
    config = SynthesisConfig.for_migration()
    spec = module.dataset().migration_spec()
    print(f"{name}:")

    start = time.perf_counter()
    cold_plan = MigrationPlan.learn(spec)
    cold_seconds = time.perf_counter() - start
    body = plan_body(cold_plan)
    print(f"  cold vectorized learn    {cold_seconds:>7.2f}s  ({len(cold_plan.tables)} tables)")

    victim = pick_removable_table(spec)
    plan, report, table_seconds = _warm_learn(spec, drop_table(spec, victim), config)
    if report.tables_synthesized != [victim]:
        raise SystemExit(
            f"add-one-table FAILED for {name}: synthesized {report.tables_synthesized}, "
            f"expected [{victim!r}]"
        )
    if plan_body(plan) != body:
        raise SystemExit(f"add-one-table byte-identity FAILED for {name}")
    table_speedup = cold_seconds / max(table_seconds, 1e-9)
    print(
        f"  warm +table ({victim})   {table_seconds:>7.3f}s  {table_speedup:>6.1f}x  "
        f"byte-identical: yes"
    )

    edit_table, edit_column = pick_droppable_column(spec)
    plan, report, column_seconds = _warm_learn(
        spec, drop_column(spec, edit_table, edit_column), config
    )
    if report.tables_synthesized != [edit_table]:
        raise SystemExit(
            f"add-one-column FAILED for {name}: synthesized {report.tables_synthesized}, "
            f"expected [{edit_table!r}]"
        )
    if plan_body(plan) != body:
        raise SystemExit(f"add-one-column byte-identity FAILED for {name}")
    column_speedup = cold_seconds / max(column_seconds, 1e-9)
    print(
        f"  warm +column ({edit_table}.{edit_column})  {column_seconds:>7.3f}s  "
        f"{column_speedup:>6.1f}x  byte-identical: yes"
    )

    return {
        "tables": len(cold_plan.tables),
        "cold_seconds": round(cold_seconds, 3),
        "add_one_table": {
            "edit": victim,
            "warm_seconds": round(table_seconds, 4),
            "speedup": round(table_speedup, 2),
            "byte_identical": True,
        },
        "add_one_column": {
            "edit": f"{edit_table}.{edit_column}",
            "warm_seconds": round(column_seconds, 4),
            "speedup": round(column_speedup, 2),
            "byte_identical": True,
        },
    }


def _smoke():
    config = SynthesisConfig.for_migration()
    spec = dblp.dataset().migration_spec()
    start = time.perf_counter()
    cold_plan = MigrationPlan.learn(spec)
    cold_seconds = time.perf_counter() - start
    edit_table, edit_column = pick_droppable_column(spec)
    plan, report, warm_seconds = _warm_learn(
        spec, drop_column(spec, edit_table, edit_column), config
    )
    unaffected = sorted(set(spec.schema.table_names) - {edit_table})
    print(
        f"  DBLP one-column edit ({edit_table}.{edit_column}): "
        f"cold {cold_seconds:.2f}s, warm {warm_seconds:.3f}s"
    )
    if report.tables_synthesized != [edit_table]:
        print(
            f"SMOKE FAIL: warm learn re-synthesized {report.tables_synthesized}; "
            f"only {edit_table!r} should run"
        )
        return 1
    if sorted(report.tables_reused) != unaffected:
        print(f"SMOKE FAIL: unaffected tables not reused: {report.tables_reused}")
        return 1
    if plan_body(plan) != plan_body(cold_plan):
        print("SMOKE FAIL: incremental plan differs from cold plan")
        return 1
    if cold_seconds + warm_seconds >= SMOKE_LIMIT_SECONDS:
        print(f"SMOKE FAIL: loop took {cold_seconds + warm_seconds:.1f}s")
        return 1
    print(
        f"smoke ok: {len(unaffected)} unaffected tables skipped, "
        "plan byte-identical to cold learn"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: DBLP one-column edit must skip unaffected tables and "
        "reproduce the cold plan byte-for-byte",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke()

    payload = {
        "benchmark": "incremental_synthesis",
        "pr": 4,
        "loop": "learn base spec → edit → incremental learn (ContextStore reuse) "
        "vs cold vectorized learn of the edited spec",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": {},
    }
    for name, module in DATASETS.items():
        payload["results"][name] = _bench_dataset(name, module)

    worst = min(
        result[edit]["speedup"]
        for result in payload["results"].values()
        for edit in ("add_one_table", "add_one_column")
    )
    payload["min_speedup"] = worst
    with open(RECORD_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {RECORD_PATH} (worst warm speedup: {worst}x)")
    if worst < MIN_REQUIRED_SPEEDUP:
        print(f"FAIL: {worst}x is below the required {MIN_REQUIRED_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
