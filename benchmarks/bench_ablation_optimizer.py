"""Benchmark E5: naive cross-product semantics vs the optimized executor."""

import pytest

from repro.dsl import run_program
from repro.evaluation.scalability import example_social_network, social_network_document
from repro.optimizer import execute
from repro.synthesis import SynthesisConfig, Synthesizer

_PROGRAM = Synthesizer(SynthesisConfig.for_migration()).synthesize(example_social_network()).program
_DOCUMENT = social_network_document(60)


def test_naive_execution(benchmark):
    rows = benchmark.pedantic(run_program, args=(_PROGRAM, _DOCUMENT), rounds=1, iterations=1)
    assert rows


def test_optimized_execution(benchmark):
    rows = benchmark.pedantic(execute, args=(_PROGRAM, _DOCUMENT), rounds=1, iterations=1)
    assert rows


def test_naive_and_optimized_agree():
    assert set(run_program(_PROGRAM, _DOCUMENT)) == set(execute(_PROGRAM, _DOCUMENT))
