"""Benchmark E1: the streaming fused-dedup executor — cross-PR perf record.

Runs the **full, unrestricted** 9-table DBLP plan (author link tables
included — the workload that was quadratic before the fused-dedup executor)
at scale 2000 and 10000, whole-tree and streaming, against the in-memory and
SQLite backends, and writes a machine-readable record to ``BENCH_PR2.json``
at the repository root so the perf trajectory can be compared across PRs.
The record includes the pre-rework baseline (10,535 rows/sec whole-tree
in-memory, *restricted* to the four linear tables — as ``runtime_perf.json``
recorded at the PR-1 commit) and the measured speedup against it.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor.py           # full record
    PYTHONPATH=src python benchmarks/bench_executor.py --smoke   # CI guard

``--smoke`` runs a small scale and fails (exit 1) unless the full
unrestricted plan finishes well under 60 s — a quadratic regression in the
value-join path makes even the small scale blow through the limit.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import dblp  # noqa: E402
from repro.runtime import (  # noqa: E402
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    execute_plan,
    iter_tree_chunks,
    stream_execute,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
RECORD_PATH = os.path.join(REPO_ROOT, "BENCH_PR2.json")

#: The pre-rework executor's whole-tree in-memory throughput, as recorded by
#: ``benchmarks/runtime_perf.json`` at the PR-1 commit (plan restricted to
#: the four linear tables — the full plan was infeasible then).  Pinned here
#: because ``bench_runtime.py`` overwrites that file with post-rework
#: numbers; the cross-PR speedup must keep comparing against the old engine.
PRE_REWORK_BASELINE = {
    "rows_per_sec": 10535,
    "scale": 2000,
    "tables": ["journal", "article", "www", "www_editor"],
    "note": "pre-rework executor (PR 1), plan restricted to the linear tables",
}

CHUNK_SIZE = 1000
SMOKE_SCALE = 200
SMOKE_LIMIT_SECONDS = 60.0


def _measure(label, run, rounds=2):
    """Best-of-N wall-clock (cross-PR records should not be noise-bound)."""
    elapsed = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        report = run()
        duration = time.perf_counter() - start
        elapsed = duration if elapsed is None else min(elapsed, duration)
    result = {
        "rows": report.total_rows,
        "seconds": round(elapsed, 4),
        "rows_per_sec": round(report.total_rows / max(elapsed, 1e-9)),
        "chunks": report.chunks,
    }
    print(f"  {label:24s} {result['rows']:>8d} rows  {result['seconds']:>8.2f}s  "
          f"{result['rows_per_sec']:>8d} rows/s")
    return result


def _run_scale(plan, scale):
    document = dblp.dataset(scale=scale).generate(scale)
    records = len(document.root.children)
    print(f"scale {scale} ({records} records):")
    results = {
        "records": records,
        "whole_tree_memory": _measure(
            "whole-tree memory", lambda: execute_plan(plan, document, MemoryBackend())
        ),
        "whole_tree_sqlite": _measure(
            "whole-tree sqlite", lambda: execute_plan(plan, document, SQLiteBackend())
        ),
        "streaming_memory": _measure(
            "streaming memory",
            lambda: stream_execute(plan, iter_tree_chunks(document, CHUNK_SIZE)),
        ),
        "streaming_sqlite": _measure(
            "streaming sqlite",
            lambda: stream_execute(
                plan, iter_tree_chunks(document, CHUNK_SIZE), SQLiteBackend()
            ),
        ),
    }
    truth = dblp.ground_truth_counts(scale)
    expected = sum(truth.values())
    for name, result in results.items():
        if name != "records" and result["rows"] != expected:
            raise SystemExit(
                f"row count mismatch at scale {scale}/{name}: "
                f"{result['rows']} != {expected}"
            )
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI guard: scale {SMOKE_SCALE}, assert < {SMOKE_LIMIT_SECONDS:.0f}s")
    parser.add_argument("--scales", type=int, nargs="*", default=[2000, 10000])
    args = parser.parse_args(argv)

    print("learning the DBLP plan (synthesis, once)...")
    start = time.perf_counter()
    plan = MigrationPlan.learn(dblp.dataset(scale=3).migration_spec())
    print(f"  learned in {time.perf_counter() - start:.1f}s "
          f"({len(plan.schema.tables)} tables, no restrict())")

    if args.smoke:
        start = time.perf_counter()
        _run_scale(plan, SMOKE_SCALE)
        elapsed = time.perf_counter() - start
        if elapsed >= SMOKE_LIMIT_SECONDS:
            print(f"SMOKE FAIL: full plan at scale {SMOKE_SCALE} took {elapsed:.1f}s "
                  f"(limit {SMOKE_LIMIT_SECONDS:.0f}s) — quadratic regression?")
            return 1
        print(f"smoke ok: {elapsed:.1f}s < {SMOKE_LIMIT_SECONDS:.0f}s")
        return 0

    baseline = PRE_REWORK_BASELINE
    payload = {
        "benchmark": "executor",
        "pr": 2,
        "dataset": "DBLP",
        "plan": "full (9 tables, author link tables included, no restrict())",
        "chunk_size": CHUNK_SIZE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "baseline": baseline,
        "results": {},
    }
    for scale in args.scales:
        payload["results"][str(scale)] = _run_scale(plan, scale)

    reference = payload["results"].get("2000", next(iter(payload["results"].values())))
    payload["speedup_vs_baseline"] = round(
        reference["whole_tree_memory"]["rows_per_sec"] / baseline["rows_per_sec"], 2
    )
    with open(RECORD_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {RECORD_PATH} (speedup vs baseline: {payload['speedup_vs_baseline']}x, "
          f"baseline measured on the restricted linear-table plan)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
