"""Benchmark E6: predicate-learning strategies (exact ILP vs greedy vs baseline)."""

import pytest

from repro.benchmarks_suite import load_suite
from repro.synthesis import BaselineSynthesizer, SynthesisConfig, Synthesizer
from repro.synthesis.synthesizer import ExamplePair, SynthesisTask

_TASK = next(t for t in load_suite() if t.expressible and t.num_columns == 3)
_SYNTH_TASK = SynthesisTask(
    examples=[ExamplePair(_TASK.tree, [tuple(r) for r in _TASK.rows])], name=_TASK.name
)


@pytest.mark.parametrize("strategy", ["ilp", "branch_and_bound", "greedy"])
def test_cover_strategy(benchmark, strategy):
    config = SynthesisConfig(cover_strategy=strategy)
    result = benchmark.pedantic(Synthesizer(config).synthesize, args=(_SYNTH_TASK,), rounds=1, iterations=1)
    assert result.success


def test_enumerative_baseline(benchmark):
    synthesizer = BaselineSynthesizer(SynthesisConfig.fast())
    result = benchmark.pedantic(synthesizer.synthesize, args=(_SYNTH_TASK,), rounds=1, iterations=1)
    # the baseline may or may not solve it; the benchmark records its cost either way
    assert result.synthesis_time >= 0
