"""Benchmark E2: Table 2 — whole-database migration of the dataset simulators.

Each benchmark learns all per-table programs from the dataset's example and
migrates a generated document, asserting that every table matches the
generator's ground truth (the paper's "Mitra can perform the desired task for
all four datasets" claim).  MONDIAL (25 tables) is the slowest case.
"""

import pytest

from repro.datasets import dblp, imdb, yelp, mondial
from repro.evaluation import run_dataset

_BUNDLES = {
    "DBLP": (dblp, 3),
    "IMDB": (imdb, 3),
    "YELP": (yelp, 3),
    "MONDIAL": (mondial, 2),
}


@pytest.mark.parametrize("name", ["DBLP", "IMDB", "YELP"])
def test_table2_migration(benchmark, name):
    module, scale = _BUNDLES[name]
    bundle = module.dataset(scale=scale)
    report = benchmark.pedantic(run_dataset, args=(bundle,), kwargs={"scale": scale}, rounds=1, iterations=1)
    assert report.error == ""
    assert report.tables_matching_ground_truth == bundle.num_tables
    assert report.fk_violations == 0


def test_table2_migration_mondial(benchmark):
    module, scale = _BUNDLES["MONDIAL"]
    bundle = module.dataset(scale=scale)
    report = benchmark.pedantic(run_dataset, args=(bundle,), kwargs={"scale": scale}, rounds=1, iterations=1)
    assert report.error == ""
    assert report.fk_violations == 0
    # the 25-table schema must be essentially fully reproduced
    assert report.tables_matching_ground_truth >= bundle.num_tables - 1
