"""Benchmark R1: the migration runtime — backends and execution strategies.

Measures rows/sec on a scaled synthetic DBLP dataset along two axes:

* **backend**: in-memory :class:`Database` vs a real SQLite database
  (``executemany`` batched inserts, WAL-style loading configuration);
* **strategy**: whole-tree execution vs streaming (chunked) execution, plus
  the multiprocessing fan-out across chunks.

The plan is learned once per session and runs **unrestricted** — all nine
DBLP tables, author link tables included.  Those tables join on position
*values* and used to be quadratic in the record count (earlier revisions
restricted the plan to its linear tables); the fused-dedup streaming executor
collapses value-join groups before enumeration, so the full plan is linear.

Besides the pytest-benchmark numbers, a JSON perf record is written to
``benchmarks/runtime_perf.json`` so that runs can be compared across commits.
See ``benchmarks/bench_executor.py`` for the cross-PR executor trajectory
record (``BENCH_PR2.json``).
"""

import json
import os
import time

import pytest

from repro.datasets import dblp
from repro.runtime import (
    MemoryBackend,
    MigrationPlan,
    SQLiteBackend,
    execute_plan,
    iter_tree_chunks,
    stream_execute,
)

SCALE = 2000  # 10k records
CHUNK_SIZE = 1000

_RECORD_PATH = os.path.join(os.path.dirname(__file__), "runtime_perf.json")
_RECORDS = {}


@pytest.fixture(scope="module")
def bundle():
    return dblp.dataset(scale=SCALE)


@pytest.fixture(scope="module")
def plan(bundle):
    return MigrationPlan.learn(bundle.migration_spec())  # full plan, no restrict()


@pytest.fixture(scope="module")
def document(bundle):
    return bundle.generate(SCALE)


def _record(name, report):
    _RECORDS[name] = {
        "rows": report.total_rows,
        "seconds": round(report.execution_time, 4),
        "rows_per_sec": round(report.total_rows / max(report.execution_time, 1e-9)),
        "chunks": report.chunks,
    }


@pytest.fixture(scope="module", autouse=True)
def write_perf_record():
    yield
    if _RECORDS:
        payload = {
            "benchmark": "runtime",
            "dataset": "DBLP",
            "scale": SCALE,
            "records": 5 * SCALE,
            "chunk_size": CHUNK_SIZE,
            "tables": "all",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "results": _RECORDS,
        }
        with open(_RECORD_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)


def test_whole_tree_memory_backend(benchmark, plan, document):
    report = benchmark.pedantic(
        execute_plan, args=(plan, document), kwargs={"backend": MemoryBackend()},
        rounds=1, iterations=1,
    )
    assert report.total_rows > 0
    _record("whole_tree_memory", report)


def test_whole_tree_sqlite_backend(benchmark, plan, document, tmp_path):
    backend = SQLiteBackend(str(tmp_path / "dblp.db"))
    report = benchmark.pedantic(
        execute_plan, args=(plan, document), kwargs={"backend": backend},
        rounds=1, iterations=1,
    )
    backend.close()
    assert report.total_rows > 0
    _record("whole_tree_sqlite", report)


def test_streaming_memory_backend(benchmark, plan, document):
    def run():
        return stream_execute(plan, iter_tree_chunks(document, CHUNK_SIZE))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.chunks > 1
    _record("streaming_memory", report)


def test_streaming_sqlite_backend(benchmark, plan, document, tmp_path):
    def run():
        backend = SQLiteBackend(str(tmp_path / "dblp_stream.db"))
        report = stream_execute(plan, iter_tree_chunks(document, CHUNK_SIZE), backend)
        backend.close()
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.chunks > 1
    _record("streaming_sqlite", report)


def test_streaming_multiprocessing(benchmark, plan, document):
    def run():
        return stream_execute(
            plan, iter_tree_chunks(document, CHUNK_SIZE), workers=2
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.chunks > 1
    _record("streaming_workers2", report)
